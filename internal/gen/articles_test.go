package gen

import (
	"testing"

	"netlistre/internal/netlist"
	"netlistre/internal/simplify"
)

func TestAllArticlesValid(t *testing.T) {
	for _, name := range ArticleNames() {
		nl, err := Article(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := nl.Check(); err != nil {
			t.Errorf("%s: invalid netlist: %v", name, err)
		}
		s := nl.Stats()
		if s.Gates < 400 {
			t.Errorf("%s: only %d gates; articles should be non-trivial", name, s.Gates)
		}
		if s.Latches < 20 {
			t.Errorf("%s: only %d latches", name, s.Latches)
		}
		if _, ok := ArticleDescriptions[name]; !ok {
			t.Errorf("%s: missing description", name)
		}
	}
	if _, err := Article("nonsense"); err == nil {
		t.Error("unknown article did not error")
	}
}

func TestArticlesDeterministic(t *testing.T) {
	a, _ := Article("oc8051")
	b, _ := Article("oc8051")
	if a.Len() != b.Len() {
		t.Errorf("oc8051 not deterministic: %d vs %d nodes", a.Len(), b.Len())
	}
}

func TestBigSoC(t *testing.T) {
	soc := BigSoC()
	if err := soc.Check(); err != nil {
		t.Fatalf("bigsoc invalid: %v", err)
	}
	raw := soc.Stats()
	res := simplify.Run(soc)
	red := res.Netlist.Stats()
	t.Logf("bigsoc: %d -> %d gates (%.0f%% reduction)", raw.Gates, red.Gates,
		100*(1-float64(red.Gates)/float64(raw.Gates)))
	// The paper reports ~55% reduction from buffers/paired inverters; our
	// noise injection should land in a comparable band.
	if ratio := float64(red.Gates) / float64(raw.Gates); ratio > 0.65 || ratio < 0.30 {
		t.Errorf("simplification ratio %.2f outside the expected band", ratio)
	}
	// Per-core reset inputs must exist.
	for _, core := range BigSoCCoreNames() {
		if soc.FindByName("rst_"+core) == netlist.Nil {
			t.Errorf("missing reset input for core %s", core)
		}
	}
}

func TestElectricalNoisePreservesSemantics(t *testing.T) {
	nl := netlist.New("t")
	a := InputWord(nl, "a", 4)
	b := InputWord(nl, "b", 4)
	sum, _ := RippleAdder(nl, a, b, netlist.Nil)
	MarkOutputs(nl, "s", sum)
	noisy := AddElectricalNoise(nl, 7, 0.5)
	if err := noisy.Check(); err != nil {
		t.Fatal(err)
	}
	if noisy.Stats().Gates <= nl.Stats().Gates {
		t.Error("noise added no gates")
	}
	// Compare behaviour on all inputs.
	nIn := func(n *netlist.Netlist) map[string]netlist.ID {
		m := map[string]netlist.ID{}
		for _, in := range n.Inputs() {
			m[n.NameOf(in)] = in
		}
		return m
	}
	oi, ni := nIn(nl), nIn(noisy)
	for av := uint64(0); av < 16; av += 3 {
		for bv := uint64(0); bv < 16; bv += 5 {
			oAssign := map[netlist.ID]bool{}
			nAssign := map[netlist.ID]bool{}
			for name, id := range oi {
				var v bool
				switch name[0] {
				case 'a':
					v = av>>uint(name[1]-'0')&1 == 1
				case 'b':
					v = bv>>uint(name[1]-'0')&1 == 1
				}
				oAssign[id] = v
				nAssign[ni[name]] = v
			}
			ov := nl.OutputValues(nl.Eval(oAssign))
			nv := noisy.OutputValues(noisy.Eval(nAssign))
			for name, want := range ov {
				if nv[name] != want {
					t.Fatalf("a=%d b=%d: output %s diverged", av, bv, name)
				}
			}
		}
	}
}

// pressKey simulates one eVoter cycle with the given key and confirm.
func pressKey(nl *netlist.Netlist, st netlist.State, key uint64, confirm bool) []bool {
	assign := map[netlist.ID]bool{
		nl.FindByName("confirm"): confirm,
		nl.FindByName("rst"):     false,
	}
	for i := 0; i < 4; i++ {
		assign[nl.FindByName("key"+string(rune('0'+i)))] = key>>uint(i)&1 == 1
	}
	for i := 0; i < 2; i++ {
		assign[nl.FindByName("dsel"+string(rune('0'+i)))] = false
	}
	return nl.Step(st, assign)
}

// voteCount reads candidate c's count via the display mux.
func voteCount(nl *netlist.Netlist, st netlist.State, c uint64) uint64 {
	assign := map[netlist.ID]bool{
		nl.FindByName("confirm"): false,
		nl.FindByName("rst"):     false,
	}
	for i := 0; i < 4; i++ {
		assign[nl.FindByName("key"+string(rune('0'+i)))] = false
	}
	for i := 0; i < 2; i++ {
		assign[nl.FindByName("dsel"+string(rune('0'+i)))] = c>>uint(i)&1 == 1
	}
	vals := nl.Step(st, assign)
	out := nl.OutputValues(vals)
	var v uint64
	for i := 0; i < 8; i++ {
		if out["disp"+itoa(i)] {
			v |= 1 << uint(i)
		}
	}
	return v
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestEVoterTrojanBehaviour(t *testing.T) {
	nl := EVoterTrojaned()
	if err := nl.Check(); err != nil {
		t.Fatal(err)
	}
	st := nl.NewState()
	// Reset.
	nl.Step(st, map[netlist.ID]bool{nl.FindByName("rst"): true})

	// Normal voting: candidate 2 gets a vote.
	pressKey(nl, st, 2, true)
	if got := voteCount(nl, st, 2); got != 1 {
		t.Fatalf("candidate 2 count = %d, want 1", got)
	}

	// Arm the backdoor with the secret sequence; first key after arming
	// selects the stored candidate (candidate 1).
	for _, code := range evoterSecret {
		pressKey(nl, st, code, true)
	}
	// Vote for candidate 3 — the trojan redirects it to the candidate
	// stored at arming time (the last secret key's low bits select the
	// register at 'done'; the stored candidate is key pressed at done,
	// i.e. 14 & 3... the stored register loads the key AT the done cycle).
	before1 := voteCount(nl, st, 1)
	before3 := voteCount(nl, st, 3)
	pressKey(nl, st, 3, true)
	after3 := voteCount(nl, st, 3)
	if after3 != before3 {
		t.Errorf("trojaned machine still counted the real vote for 3 (%d -> %d)", before3, after3)
	}
	_ = before1

	// The clean machine counts normally.
	clean := EVoter()
	cst := clean.NewState()
	clean.Step(cst, map[netlist.ID]bool{clean.FindByName("rst"): true})
	for _, code := range evoterSecret {
		pressKey(clean, cst, code, true)
	}
	b3 := voteCount(clean, cst, 3)
	pressKey(clean, cst, 3, true)
	if got := voteCount(clean, cst, 3); got != b3+1 {
		t.Errorf("clean machine: candidate 3 count %d -> %d, want +1", b3, got)
	}
}

func TestOC8051TrojanBehaviour(t *testing.T) {
	nl := OC8051Trojaned()
	if err := nl.Check(); err != nil {
		t.Fatal(err)
	}
	st := nl.NewState()
	inputs := func(aval, bval uint64, selv uint64, ld bool) map[netlist.ID]bool {
		assign := map[netlist.ID]bool{
			nl.FindByName("rst"):     false,
			nl.FindByName("ldalu"):   ld,
			nl.FindByName("ldbus"):   false,
			nl.FindByName("alumode"): false,
			nl.FindByName("iramwe"):  false,
		}
		for i := 0; i < 8; i++ {
			assign[nl.FindByName("acc_in"+itoa(i))] = aval>>uint(i)&1 == 1
			assign[nl.FindByName("opnd"+itoa(i))] = bval>>uint(i)&1 == 1
			assign[nl.FindByName("bus"+itoa(i))] = false
		}
		for i := 0; i < 2; i++ {
			assign[nl.FindByName("alusel"+itoa(i))] = selv>>uint(i)&1 == 1
		}
		for i := 0; i < 5; i++ {
			assign[nl.FindByName("t"+itoa(i)+"en")] = false
		}
		return assign
	}
	accVal := func(vals []bool) uint64 {
		out := nl.OutputValues(vals)
		var v uint64
		for i := 0; i < 8; i++ {
			if out["acc"+itoa(i)] {
				v |= 1 << uint(i)
			}
		}
		return v
	}
	// Reset.
	rstAssign := inputs(0, 0, 0, false)
	rstAssign[nl.FindByName("rst")] = true
	nl.Step(st, rstAssign)

	// A normal add works: acc = 5 + 3.
	nl.Step(st, inputs(5, 3, 0, true))
	if got := accVal(nl.Eval(stateAssign(nl, st, inputs(0, 0, 0, false)))); got != 8 {
		t.Fatalf("acc after add = %d, want 8", got)
	}

	// Execute 6 consecutive XOR instructions to trip the kill switch.
	for i := 0; i < 6; i++ {
		nl.Step(st, inputs(1, 2, 3, true))
	}
	// Now every ALU commit stores zero.
	nl.Step(st, inputs(5, 3, 0, true))
	if got := accVal(nl.Eval(stateAssign(nl, st, inputs(0, 0, 0, false)))); got != 0 {
		t.Errorf("acc after kill = %d, want 0 (kill switch active)", got)
	}

	// The clean design keeps working after the same sequence.
	clean := OC8051()
	cst := clean.NewState()
	crst := map[netlist.ID]bool{clean.FindByName("rst"): true}
	clean.Step(cst, crst)
	cin := func(aval, bval, selv uint64, ld bool) map[netlist.ID]bool {
		assign := map[netlist.ID]bool{
			clean.FindByName("rst"):     false,
			clean.FindByName("ldalu"):   ld,
			clean.FindByName("ldbus"):   false,
			clean.FindByName("alumode"): false,
		}
		for i := 0; i < 8; i++ {
			assign[clean.FindByName("acc_in"+itoa(i))] = aval>>uint(i)&1 == 1
			assign[clean.FindByName("opnd"+itoa(i))] = bval>>uint(i)&1 == 1
			assign[clean.FindByName("bus"+itoa(i))] = false
		}
		for i := 0; i < 2; i++ {
			assign[clean.FindByName("alusel"+itoa(i))] = selv>>uint(i)&1 == 1
		}
		return assign
	}
	for i := 0; i < 6; i++ {
		clean.Step(cst, cin(1, 2, 3, true))
	}
	clean.Step(cst, cin(5, 3, 0, true))
	vals := clean.Eval(stateAssign(clean, cst, cin(0, 0, 0, false)))
	out := clean.OutputValues(vals)
	var got uint64
	for i := 0; i < 8; i++ {
		if out["acc"+itoa(i)] {
			got |= 1 << uint(i)
		}
	}
	if got != 8 {
		t.Errorf("clean acc = %d, want 8", got)
	}
}

// stateAssign merges latch state with an input assignment for a pure
// combinational read-out.
func stateAssign(nl *netlist.Netlist, st netlist.State, inputs map[netlist.ID]bool) map[netlist.ID]bool {
	out := make(map[netlist.ID]bool, len(st)+len(inputs))
	for k, v := range st {
		out[k] = v
	}
	for k, v := range inputs {
		out[k] = v
	}
	return out
}

func TestTrojanSizeDeltas(t *testing.T) {
	// Table 7 of the paper: the trojaned designs add a modest number of
	// gates and latches.
	for _, tc := range []struct {
		name        string
		clean, troj *netlist.Netlist
	}{
		{"evoter", EVoter(), EVoterTrojaned()},
		{"oc8051", OC8051(), OC8051Trojaned()},
	} {
		cs, ts := tc.clean.Stats(), tc.troj.Stats()
		dg, dl := ts.Gates-cs.Gates, ts.Latches-cs.Latches
		if dg <= 0 || dl <= 0 {
			t.Errorf("%s: trojan added %d gates %d latches; want positive", tc.name, dg, dl)
		}
		if dg > cs.Gates/2 {
			t.Errorf("%s: trojan too large (%d of %d gates)", tc.name, dg, cs.Gates)
		}
	}
}
