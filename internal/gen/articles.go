package gen

// This file builds the eight synthetic test articles standing in for the
// paper's Table 2 netlists. The real articles (opencores designs
// synthesized with an IBM/ARM 45nm library, plus a proprietary eVoter) are
// not available, so each generator reproduces the *structural mix* that
// drives the paper's coverage numbers: datapath-rich designs (MIPS16, RISC
// FPU) dominated by replicated bitslices, and control-heavy designs
// (eVoter, USB) where irregular logic dilutes coverage. Absolute sizes are
// smaller than the paper's; the coverage *shape* across articles is the
// reproduction target (Table 3).

import (
	"fmt"
	"math/rand"
	"sort"

	"netlistre/internal/netlist"
)

// ArticleNames lists the available synthetic test articles in Table 2
// order.
func ArticleNames() []string {
	names := make([]string, 0, len(articles))
	for n := range articles {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		return articleOrder[names[i]] < articleOrder[names[j]]
	})
	return names
}

var articleOrder = map[string]int{
	"mips16": 0, "riscfpu": 1, "router": 2, "oc8051": 3,
	"aemb": 4, "msp430": 5, "usb": 6, "evoter": 7,
}

var articles = map[string]func() *netlist.Netlist{
	"mips16":  MIPS16,
	"riscfpu": RISCFPU,
	"router":  Router,
	"oc8051":  OC8051,
	"aemb":    AEMB,
	"msp430":  MSP430,
	"usb":     USB,
	"evoter":  EVoter,
}

// ArticleDescriptions maps article names to one-line descriptions for the
// Table 2 report.
var ArticleDescriptions = map[string]string{
	"mips16":  "16-bit MIPS-like CPU (register file, ALU, PC, decoder)",
	"riscfpu": "RISC FPU-like datapath (register file, adders, shifters)",
	"router":  "NoC router (FIFOs, crossbar, CRC, arbiter)",
	"oc8051":  "8051-like microcontroller (ALU, timers, RAM, decoder)",
	"aemb":    "small RISC core (register file, adder, PC)",
	"msp430":  "16-bit MCU datapath (add/sub, registers, timer)",
	"usb":     "serial interface (shift registers, CRC, bit-stuff counter)",
	"evoter":  "electronic voting machine (key decoder, vote counters)",
}

// Article builds the named test article.
func Article(name string) (*netlist.Netlist, error) {
	f, ok := articles[name]
	if !ok {
		return nil, fmt.Errorf("gen: unknown article %q", name)
	}
	return f(), nil
}

// controlNoise adds irregular control logic: random acyclic gates over the
// given signals plus a few state latches with random next-state functions.
// This is the fraction of a real design the portfolio cannot identify.
func controlNoise(nl *netlist.Netlist, rng *rand.Rand, signals []netlist.ID, nGates, nLatches int) []netlist.ID {
	span := beginNoise(nl)
	defer span.end()
	pool := append([]netlist.ID(nil), signals...)
	var latches []netlist.ID
	for i := 0; i < nLatches; i++ {
		l := nl.AddLatch(pool[rng.Intn(len(pool))])
		latches = append(latches, l)
		pool = append(pool, l)
	}
	kinds := []netlist.Kind{netlist.And, netlist.Or, netlist.Nand, netlist.Nor,
		netlist.Xor, netlist.Xnor, netlist.Not}
	for i := 0; i < nGates; i++ {
		k := kinds[rng.Intn(len(kinds))]
		var g netlist.ID
		if k == netlist.Not {
			g = nl.AddGate(k, pool[rng.Intn(len(pool))])
		} else {
			arity := 2 + rng.Intn(2)
			fan := make([]netlist.ID, arity)
			for j := range fan {
				fan[j] = pool[rng.Intn(len(pool))]
			}
			g = nl.AddGate(k, fan...)
		}
		pool = append(pool, g)
	}
	for _, l := range latches {
		nl.SetLatchD(l, pool[len(pool)-1-rng.Intn(nGates/2+1)])
	}
	return pool[len(signals):]
}

// alu builds a width-bit ALU: add/sub (mode), bitwise and/or/xor, selected
// by a 4:1 mux tree over two op bits. Returns the result word.
func alu(nl *netlist.Netlist, a, b Word, mode netlist.ID, op Word) Word {
	addsub, _ := AddSub(nl, a, b, mode)
	andW := Bitwise(nl, netlist.And, a, b)
	orW := Bitwise(nl, netlist.Or, a, b)
	xorW := Bitwise(nl, netlist.Xor, a, b)
	return MuxTree(nl, op, []Word{addsub, andW, orW, xorW})
}

// MIPS16 builds the 16-bit MIPS-like CPU: the paper's highest-coverage
// article (93%), dominated by the register file and ALU datapath.
func MIPS16() *netlist.Netlist { nl, _ := LabeledMIPS16(); return nl }

// LabeledMIPS16 builds MIPS16 along with its ground-truth labels.
func LabeledMIPS16() (*netlist.Netlist, *Labels) {
	nl := netlist.New("mips16")
	lab := StartRecording(nl)
	defer StopRecording(nl)
	rng := rand.New(rand.NewSource(101))

	const w = 16
	waddr := InputWord(nl, "waddr", 3)
	raddr1 := InputWord(nl, "raddr1", 3)
	raddr2 := InputWord(nl, "raddr2", 3)
	we := nl.AddInput("regwe")
	wdata := InputWord(nl, "wdata", w)
	read1, cells := RegisterFile(nl, 8, w, waddr, wdata, we, raddr1)
	read2 := MuxTree(nl, raddr2, cells) // second read port

	mode := nl.AddInput("alumode")
	op := InputWord(nl, "aluop", 2)
	result := alu(nl, read1, read2, mode, op)
	MarkOutputs(nl, "result", result)

	// Program counter: 16-bit up counter with enable/reset.
	pcEn := nl.AddInput("pcen")
	rst := nl.AddInput("rst")
	pc := Counter(nl, w, pcEn, rst, false)
	MarkOutputs(nl, "pc", pc)

	// Instruction register: load from memory bus or interrupt vector.
	ibus := InputWord(nl, "ibus", w)
	ivec := InputWord(nl, "ivec", w)
	ld := nl.AddInput("irld")
	iv := nl.AddInput("irvec")
	ir := MultibitRegister(nl, []Word{ibus, ivec}, []netlist.ID{ld, iv})

	// Opcode decoder over the IR top bits.
	dec := Decoder(nl, Word{ir[12], ir[13], ir[14], ir[15]})
	// Branch comparator.
	eq := EqualComparator(nl, read1, read2)
	nl.MarkOutput("beq", eq)

	// Irregular control: ~8% of the datapath gates.
	ctl := append(append(Word{}, dec[:8]...), eq, pcEn, ld)
	controlNoise(nl, rng, ctl, 150, 8)
	return nl, lab
}

// RISCFPU builds the FPU-like article: wide register file, several
// adders/subtractors, tandem shift registers, parity trees and many
// registers (the paper reports 140 muxes, 37 adders/subtractors, 7 shift
// registers, 10 parity trees and a 32x32 register file on its RISC FPU).
func RISCFPU() *netlist.Netlist { nl, _ := LabeledRISCFPU(); return nl }

// LabeledRISCFPU builds RISCFPU along with its ground-truth labels.
func LabeledRISCFPU() (*netlist.Netlist, *Labels) {
	nl := netlist.New("riscfpu")
	lab := StartRecording(nl)
	defer StopRecording(nl)
	rng := rand.New(rand.NewSource(202))

	const w = 16
	waddr := InputWord(nl, "waddr", 5)
	raddr := InputWord(nl, "raddr", 5)
	raddr2 := InputWord(nl, "raddr2", 5)
	we := nl.AddInput("we")
	wdata := InputWord(nl, "wdata", w)
	read, cells := RegisterFile(nl, 32, w, waddr, wdata, we, raddr)
	read2 := MuxTree(nl, raddr2, cells) // second read port (paper: 2r1w)
	MarkOutputs(nl, "rf", read)
	MarkOutputs(nl, "rf2", read2)

	// Mantissa adders / exponent subtractors.
	var sums []Word
	for i := 0; i < 3; i++ {
		a := InputWord(nl, fmt.Sprintf("ma%d_", i), 24)
		b := InputWord(nl, fmt.Sprintf("mb%d_", i), 24)
		s, _ := RippleAdder(nl, a, b, netlist.Nil)
		sums = append(sums, s)
	}
	for i := 0; i < 2; i++ {
		a := InputWord(nl, fmt.Sprintf("ea%d_", i), 8)
		b := InputWord(nl, fmt.Sprintf("eb%d_", i), 8)
		d, _ := RippleSubtractor(nl, a, b)
		MarkOutputs(nl, fmt.Sprintf("ediff%d_", i), d)
	}

	// Normalization shifter lanes: 7 tandem shift registers.
	shEn := nl.AddInput("shen")
	shRst := nl.AddInput("shrst")
	for i := 0; i < 7; i++ {
		sin := nl.AddInput(fmt.Sprintf("sin%d", i))
		ShiftRegister(nl, 8, shEn, shRst, sin)
	}

	// Sticky/guard parity trees.
	for i := 0; i < 4; i++ {
		nl.MarkOutput(fmt.Sprintf("sticky%d", i), ParityTree(nl, sums[i%3][:12]))
	}

	// Pipeline registers with write enables (multibit registers).
	for i := 0; i < 6; i++ {
		en := nl.AddInput(fmt.Sprintf("pipeen%d", i))
		Register(nl, sums[i%3][:w], en)
	}

	// Result selection mux tree.
	sel := InputWord(nl, "rsel", 2)
	res := MuxTree(nl, sel, []Word{sums[0][:w], sums[1][:w], sums[2][:w], read})
	MarkOutputs(nl, "fres", res)

	ctl := Word{shEn, shRst, we}
	controlNoise(nl, rng, append(ctl, res[:4]...), 850, 24)
	return nl, lab
}

// Router builds the NoC-router article: FIFOs with head/tail counters, a
// crossbar of muxes and CRC parity trees, plus arbiter control.
func Router() *netlist.Netlist { nl, _ := LabeledRouter(); return nl }

// LabeledRouter builds Router along with its ground-truth labels.
func LabeledRouter() (*netlist.Netlist, *Labels) {
	nl := netlist.New("router")
	lab := StartRecording(nl)
	defer StopRecording(nl)
	rng := rand.New(rand.NewSource(303))

	const ports = 4
	var outWords []Word
	rst := nl.AddInput("rst")
	for p := 0; p < ports; p++ {
		// FIFO storage: 8x8 register file + head/tail 3-bit counters.
		waddr := InputWord(nl, fmt.Sprintf("p%dwa", p), 3)
		raddr := InputWord(nl, fmt.Sprintf("p%dra", p), 3)
		we := nl.AddInput(fmt.Sprintf("p%dwe", p))
		wdata := InputWord(nl, fmt.Sprintf("p%dwd", p), 8)
		read, _ := RegisterFile(nl, 8, 8, waddr, wdata, we, raddr)
		outWords = append(outWords, read)

		pushEn := nl.AddInput(fmt.Sprintf("p%dpush", p))
		popEn := nl.AddInput(fmt.Sprintf("p%dpop", p))
		Counter(nl, 3, pushEn, rst, false) // tail pointer
		Counter(nl, 3, popEn, rst, false)  // head pointer
	}

	// Crossbar: each output port selects among the four FIFO heads.
	for p := 0; p < ports; p++ {
		sel := InputWord(nl, fmt.Sprintf("x%dsel", p), 2)
		out := MuxTree(nl, sel, outWords)
		MarkOutputs(nl, fmt.Sprintf("out%d_", p), out)
		// Per-port CRC parity tree.
		nl.MarkOutput(fmt.Sprintf("crc%d", p), ParityTree(nl, out))
	}

	var ctl Word
	for p := 0; p < ports; p++ {
		ctl = append(ctl, outWords[p][0])
	}
	controlNoise(nl, rng, append(ctl, rst), 380, 16)
	return nl, lab
}

// OC8051 builds the 8051-like microcontroller (see trojan.go for the
// parameterized builder shared with the trojan-injected variant).
func OC8051() *netlist.Netlist { nl, _ := buildOC8051(false); return nl }

// AEMB builds a small RISC core.
func AEMB() *netlist.Netlist { nl, _ := LabeledAEMB(); return nl }

// LabeledAEMB builds AEMB along with its ground-truth labels.
func LabeledAEMB() (*netlist.Netlist, *Labels) {
	nl := netlist.New("aemb")
	lab := StartRecording(nl)
	defer StopRecording(nl)
	rng := rand.New(rand.NewSource(505))

	waddr := InputWord(nl, "wa", 3)
	raddr := InputWord(nl, "ra", 3)
	we := nl.AddInput("we")
	wdata := InputWord(nl, "wd", 8)
	read, _ := RegisterFile(nl, 8, 8, waddr, wdata, we, raddr)

	b := InputWord(nl, "b", 8)
	sum, _ := RippleAdder(nl, read, b, netlist.Nil)
	MarkOutputs(nl, "sum", sum)

	pcEn := nl.AddInput("pcen")
	rst := nl.AddInput("rst")
	pc := Counter(nl, 8, pcEn, rst, false)
	MarkOutputs(nl, "pc", pc)

	sel := nl.AddInput("wbsel")
	wb := Mux2Word(nl, sel, sum, read)
	MarkOutputs(nl, "wb", wb)

	controlNoise(nl, rng, Word{we, pcEn, sel, sum[0], sum[7]}, 260, 12)
	return nl, lab
}

// MSP430 builds a 16-bit MCU datapath.
func MSP430() *netlist.Netlist { nl, _ := LabeledMSP430(); return nl }

// LabeledMSP430 builds MSP430 along with its ground-truth labels.
func LabeledMSP430() (*netlist.Netlist, *Labels) {
	nl := netlist.New("msp430")
	lab := StartRecording(nl)
	defer StopRecording(nl)
	rng := rand.New(rand.NewSource(606))

	const w = 16
	a := InputWord(nl, "srca", w)
	b := InputWord(nl, "srcb", w)
	mode := nl.AddInput("mode")
	res, _ := AddSub(nl, a, b, mode)
	MarkOutputs(nl, "res", res)

	// Four general-purpose registers with enables.
	for i := 0; i < 4; i++ {
		en := nl.AddInput(fmt.Sprintf("r%den", i))
		Register(nl, res, en)
	}

	// Timer A: 16-bit counter; watchdog: 8-bit counter.
	rst := nl.AddInput("rst")
	ten := nl.AddInput("taen")
	Counter(nl, w, ten, rst, false)
	wen := nl.AddInput("wdten")
	Counter(nl, 8, wen, rst, false)

	// UART shift register.
	uen := nl.AddInput("uarten")
	sin := nl.AddInput("rxd")
	ShiftRegister(nl, 10, uen, rst, sin)

	// Status mux.
	ssel := nl.AddInput("ssel")
	st := Mux2Word(nl, ssel, a, res)
	MarkOutputs(nl, "st", st)

	controlNoise(nl, rng, Word{mode, ten, wen, uen, res[0], res[15]}, 420, 18)
	return nl, lab
}

// USB builds the serial-interface article: shift-register heavy with CRC
// trees and a bit-stuffing counter, diluted by protocol control logic.
func USB() *netlist.Netlist { nl, _ := LabeledUSB(); return nl }

// LabeledUSB builds USB along with its ground-truth labels.
func LabeledUSB() (*netlist.Netlist, *Labels) {
	nl := netlist.New("usb")
	lab := StartRecording(nl)
	defer StopRecording(nl)
	rng := rand.New(rand.NewSource(707))

	rst := nl.AddInput("rst")
	rxen := nl.AddInput("rxen")
	txen := nl.AddInput("txen")
	rxd := nl.AddInput("rxd")
	txd := nl.AddInput("txd")
	rxsr := ShiftRegister(nl, 16, rxen, rst, rxd)
	txsr := ShiftRegister(nl, 8, txen, rst, txd)
	MarkOutputs(nl, "rx", rxsr[8:])

	// CRC5 and CRC16 reduction trees over the shift registers.
	nl.MarkOutput("crc5", ParityTree(nl, rxsr[:5]))
	nl.MarkOutput("crc16", ParityTree(nl, rxsr))
	nl.MarkOutput("txpar", ParityTree(nl, txsr))

	// Bit-stuffing counter (counts consecutive ones).
	sen := nl.AddInput("stuffen")
	Counter(nl, 3, sen, rst, false)

	// Endpoint buffer: 4x8.
	waddr := InputWord(nl, "epwa", 2)
	raddr := InputWord(nl, "epra", 2)
	we := nl.AddInput("epwe")
	read, _ := RegisterFile(nl, 4, 8, waddr, InputWord(nl, "epwd", 8), we, raddr)
	MarkOutputs(nl, "ep", read)

	controlNoise(nl, rng, Word{rxen, txen, rxd, rxsr[0], txsr[0], we}, 400, 18)
	return nl, lab
}

// EVoter builds the voting-machine article (see trojan.go for the
// parameterized builder shared with the trojan-injected variant).
func EVoter() *netlist.Netlist { nl, _ := buildEVoter(false); return nl }
