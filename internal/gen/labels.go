package gen

// Ground-truth labels. The generators in this package assemble every
// article from known components, so the "answer key" the paper's authors
// had (which RTL module each gate belongs to) is available for free: while
// a labeled builder runs, each component constructor records the class,
// width, member nodes and port words of the structure it just built. The
// oracle package scores an analysis report against these labels.
//
// Recording is span-based: a constructor brackets its work with
// beginComponent/end, and every node the netlist gained in between is a
// member. Nested constructor calls (the decoder and mux tree inside
// RegisterFile, the ripple adder inside AddSub or PopCount) are suppressed
// so each node is claimed by exactly one top-level component — matching
// how the paper counts a register file as one module, not one RAM plus one
// decoder plus one mux tree. Trojan builders additionally bracket their
// inserted logic with beginTrojan/end; components emitted inside are
// flagged and every trojan-span node lands in Labels.Trojan.
//
// Recorders attach to a *Netlist via a package registry, so the component
// constructors keep their exact signatures and node-creation order: a
// labeled build is byte-identical to an unlabeled one.

import (
	"fmt"
	"sort"
	"sync"

	"netlistre/internal/netlist"
)

// Class identifies a ground-truth component class. The values mirror the
// module types the portfolio reports (module.Type.String()).
type Class string

const (
	ClassAdder         Class = "adder"
	ClassSubtractor    Class = "subtractor"
	ClassMux           Class = "mux"
	ClassDecoder       Class = "decoder"
	ClassParityTree    Class = "parity-tree"
	ClassPopCount      Class = "popcount"
	ClassCounter       Class = "counter"
	ClassShiftRegister Class = "shift-register"
	ClassRAM           Class = "ram"
	ClassRegister      Class = "multibit-register"
)

// Component is one ground-truth structure: a component constructor call
// that completed at nesting depth zero while a recorder was attached.
type Component struct {
	Class Class
	// Width is the component's natural bit width (operand width for
	// arithmetic, data width for muxes/registers/RAMs, select width for
	// decoders).
	Width int
	// Members lists every gate and latch the constructor created, sorted.
	// Inputs and constants are never members.
	Members []netlist.ID
	// Words maps port names (sum, out, q, read, ...) to multi-bit signal
	// words, LSB first. Word bits may be inputs or nodes of other
	// components (an adder's operands, say); Members is the ownership set,
	// Words is the interface.
	Words map[string][]netlist.ID
	// Trojan marks components built inside a trojan span.
	Trojan bool
}

// Labels is the ground truth for one generated design.
type Labels struct {
	Design     string
	Components []Component
	// Trojan lists every gate and latch created inside a trojan span,
	// sorted — the paper's Section V-D "suspect set" ground truth.
	Trojan []netlist.ID
	// Noise lists the irregular control-noise gates and latches, sorted.
	// They belong to no component, but a module the portfolio carves out
	// of this region (a random XOR chain really is a parity function) is
	// a correct find, not a false positive — the oracle grounds against
	// this set too.
	Noise []netlist.ID
}

// ByClass groups component indices by class.
func (l *Labels) ByClass() map[Class][]*Component {
	m := make(map[Class][]*Component)
	for i := range l.Components {
		c := &l.Components[i]
		m[c.Class] = append(m[c.Class], c)
	}
	return m
}

// Remap rewrites every node reference through f, which maps an original
// node to its images in a transformed netlist (one-to-many to support
// rewrites that split a gate, empty to drop nodes the transform removed or
// merged into inputs). Component geometry (class, width, trojan flags) is
// preserved; a component whose members all vanish is kept with empty
// Members so recall still counts it.
func (l *Labels) Remap(f func(netlist.ID) []netlist.ID) *Labels {
	out := &Labels{Design: l.Design}
	mapSet := func(ids []netlist.ID) []netlist.ID {
		var r []netlist.ID
		seen := make(map[netlist.ID]bool, len(ids))
		for _, id := range ids {
			for _, nid := range f(id) {
				if !seen[nid] {
					seen[nid] = true
					r = append(r, nid)
				}
			}
		}
		sort.Slice(r, func(i, j int) bool { return r[i] < r[j] })
		return r
	}
	for _, c := range l.Components {
		nc := Component{Class: c.Class, Width: c.Width, Trojan: c.Trojan,
			Members: mapSet(c.Members)}
		if len(c.Words) > 0 {
			nc.Words = make(map[string][]netlist.ID, len(c.Words))
			for name, w := range c.Words {
				nw := make([]netlist.ID, 0, len(w))
				for _, b := range w {
					img := f(b)
					if len(img) == 0 {
						nw = nil
						break
					}
					// A word bit maps to the image that carries its value;
					// for one-to-many rewrites that is the last (output)
					// node by convention.
					nw = append(nw, img[len(img)-1])
				}
				if nw != nil {
					nc.Words[name] = nw
				}
			}
		}
		out.Components = append(out.Components, nc)
	}
	out.Trojan = mapSet(l.Trojan)
	out.Noise = mapSet(l.Noise)
	return out
}

// recorder accumulates labels for one netlist while its builder runs.
type recorder struct {
	nl          *netlist.Netlist
	labels      *Labels
	depth       int
	trojanDepth int
}

var (
	recMu     sync.Mutex
	recorders = map[*netlist.Netlist]*recorder{}
)

// StartRecording attaches a label recorder to nl and returns the Labels
// the component constructors will fill in. Call StopRecording when the
// build is done.
func StartRecording(nl *netlist.Netlist) *Labels {
	r := &recorder{nl: nl, labels: &Labels{Design: nl.Name}}
	recMu.Lock()
	recorders[nl] = r
	recMu.Unlock()
	return r.labels
}

// StopRecording detaches the recorder from nl.
func StopRecording(nl *netlist.Netlist) {
	recMu.Lock()
	delete(recorders, nl)
	recMu.Unlock()
}

func recorderOf(nl *netlist.Netlist) *recorder {
	recMu.Lock()
	r := recorders[nl]
	recMu.Unlock()
	return r
}

// componentSpan brackets one constructor invocation.
type componentSpan struct {
	r     *recorder
	start int
	outer bool
}

// beginComponent opens a span over the nodes the calling constructor is
// about to create. It is a no-op (and free of any netlist mutation) when
// no recorder is attached.
func beginComponent(nl *netlist.Netlist) componentSpan {
	r := recorderOf(nl)
	if r == nil {
		return componentSpan{}
	}
	r.depth++
	return componentSpan{r: r, start: r.nl.Len(), outer: r.depth == 1}
}

// end closes the span. Only outermost spans emit a Component; nested ones
// are members of their parent.
func (s componentSpan) end(class Class, width int, words map[string]Word) {
	if s.r == nil {
		return
	}
	s.r.depth--
	if !s.outer {
		return
	}
	members := spanMembers(s.r.nl, s.start)
	if len(members) == 0 {
		return
	}
	c := Component{Class: class, Width: width, Members: members,
		Trojan: s.r.trojanDepth > 0}
	if len(words) > 0 {
		c.Words = make(map[string][]netlist.ID, len(words))
		for name, w := range words {
			c.Words[name] = append([]netlist.ID(nil), w...)
		}
	}
	s.r.labels.Components = append(s.r.labels.Components, c)
}

// unlabeledSpan suppresses component emission for the constructors called
// inside it, without emitting anything itself. Builders use it around
// incidental constructor calls that are not architectural components (a
// constant-increment inside an FSM, say).
type unlabeledSpan struct{ r *recorder }

func beginUnlabeled(nl *netlist.Netlist) unlabeledSpan {
	r := recorderOf(nl)
	if r != nil {
		r.depth++
	}
	return unlabeledSpan{r: r}
}

func (u unlabeledSpan) end() {
	if u.r != nil {
		u.r.depth--
	}
}

// noiseSpan brackets a control-noise block in a builder.
type noiseSpan struct {
	r     *recorder
	start int
}

func beginNoise(nl *netlist.Netlist) noiseSpan {
	r := recorderOf(nl)
	if r == nil {
		return noiseSpan{}
	}
	return noiseSpan{r: r, start: r.nl.Len()}
}

func (s noiseSpan) end() {
	if s.r == nil {
		return
	}
	s.r.labels.Noise = append(s.r.labels.Noise, spanMembers(s.r.nl, s.start)...)
	sort.Slice(s.r.labels.Noise, func(i, j int) bool {
		return s.r.labels.Noise[i] < s.r.labels.Noise[j]
	})
}

// trojanSpan brackets a trojan-insertion block in a builder.
type trojanSpan struct {
	r     *recorder
	start int
}

func beginTrojan(nl *netlist.Netlist) trojanSpan {
	r := recorderOf(nl)
	if r == nil {
		return trojanSpan{}
	}
	r.trojanDepth++
	return trojanSpan{r: r, start: r.nl.Len()}
}

func (t trojanSpan) end() {
	if t.r == nil {
		return
	}
	t.r.trojanDepth--
	t.r.labels.Trojan = append(t.r.labels.Trojan, spanMembers(t.r.nl, t.start)...)
	sort.Slice(t.r.labels.Trojan, func(i, j int) bool {
		return t.r.labels.Trojan[i] < t.r.labels.Trojan[j]
	})
}

// spanMembers lists the gate and latch nodes created at or after start.
func spanMembers(nl *netlist.Netlist, start int) []netlist.ID {
	var members []netlist.ID
	for i := start; i < nl.Len(); i++ {
		switch nl.Node(netlist.ID(i)).Kind {
		case netlist.Input, netlist.Const0, netlist.Const1:
		default:
			members = append(members, netlist.ID(i))
		}
	}
	return members
}

// labeledArticles registers the builders that return ground truth: the
// eight Table 2 articles, the two trojan-injected variants, and the
// LUT-mapped FPGA workload (each base article through gen.LutMapped with
// labels remapped onto the LUT nodes).
var labeledArticles = map[string]func() (*netlist.Netlist, *Labels){
	"mips16":        LabeledMIPS16,
	"riscfpu":       LabeledRISCFPU,
	"router":        LabeledRouter,
	"oc8051":        func() (*netlist.Netlist, *Labels) { return buildOC8051(false) },
	"aemb":          LabeledAEMB,
	"msp430":        LabeledMSP430,
	"usb":           LabeledUSB,
	"evoter":        func() (*netlist.Netlist, *Labels) { return buildEVoter(false) },
	"oc8051-trojan": func() (*netlist.Netlist, *Labels) { return buildOC8051(true) },
	"evoter-trojan": func() (*netlist.Netlist, *Labels) { return buildEVoter(true) },
}

func init() {
	lutted := append(append([]string(nil), baseArticleNames...),
		"oc8051-trojan", "evoter-trojan")
	for _, name := range lutted {
		build := labeledArticles[name]
		labeledArticles[name+"-lut"] = func() (*netlist.Netlist, *Labels) {
			return LutMappedLabeled(build)
		}
	}
}

var baseArticleNames = []string{"mips16", "riscfpu", "router", "oc8051",
	"aemb", "msp430", "usb", "evoter"}

// LabeledArticleNames lists the articles LabeledArticle accepts, in Table 2
// order with the trojan variants and the LUT-mapped FPGA workload last.
func LabeledArticleNames() []string {
	names := append([]string(nil), baseArticleNames...)
	names = append(names, "oc8051-trojan", "evoter-trojan")
	for _, n := range baseArticleNames {
		names = append(names, n+"-lut")
	}
	return names
}

// TrojanArticlePairs lists the golden/suspect article-name pairs the
// differential trojan workflow is scored on: each labeled trojan article
// against its clean counterpart, in both gate-level and LUT-mapped form.
// The pairs are accepted by LabeledArticle but deliberately kept out of
// LabeledArticleNames: they are diff workload, not conformance-matrix
// articles.
func TrojanArticlePairs() [][2]string {
	return [][2]string{
		{"oc8051", "oc8051-trojan"},
		{"evoter", "evoter-trojan"},
		{"oc8051-lut", "oc8051-trojan-lut"},
		{"evoter-lut", "evoter-trojan-lut"},
	}
}

// LabeledArticle builds the named article together with its ground-truth
// labels. In addition to the Table 2 articles it accepts the
// "oc8051-trojan" and "evoter-trojan" variants (and their "-lut"
// mappings), whose labels carry the trojan suspect-set ground truth.
func LabeledArticle(name string) (*netlist.Netlist, *Labels, error) {
	f, ok := labeledArticles[name]
	if !ok {
		return nil, nil, fmt.Errorf("gen: unknown article %q", name)
	}
	nl, lab := f()
	return nl, lab, nil
}
