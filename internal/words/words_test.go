package words

import (
	"testing"

	"netlistre/internal/gen"
	"netlistre/internal/module"
	"netlistre/internal/netlist"
)

func TestFromModules(t *testing.T) {
	m := module.New(module.Adder, 4, []netlist.ID{10, 11})
	m.SetPort("sum", []netlist.ID{1, 2, 3, 4})
	m.SetPort("a", []netlist.ID{5, 6, 7, 8})
	m.SetPort("cin", []netlist.ID{9}) // single-bit: not a word
	ws := FromModules([]*module.Module{m})
	if len(ws) != 2 {
		t.Fatalf("got %d words, want 2 (%v)", len(ws), ws)
	}
}

func TestPropagateThroughInverters(t *testing.T) {
	// w -> bitwise not -> w' : must propagate with no controls, negated.
	nl := netlist.New("inv")
	w := gen.InputWord(nl, "w", 4)
	out := gen.BitwiseNot(nl, w)
	props := Propagate(nl, Word{Bits: w}, Options{})
	if len(props) == 0 {
		t.Fatal("no propagation through inverters")
	}
	p := props[0]
	for i, g := range p.Target.Bits {
		if g != out[i] {
			t.Errorf("target[%d] = %d, want %d", i, g, out[i])
		}
		if !p.Negated[i] {
			t.Errorf("bit %d should be negated", i)
		}
	}
	if len(p.Controls) != 0 {
		t.Errorf("controls = %v, want none", p.Controls)
	}
}

func TestPropagateFigure2(t *testing.T) {
	// The paper's Figure 2: w = mux(c, ~u, ~v). Propagating u requires
	// discovering the control c=0 and yields negated values.
	nl := netlist.New("fig2")
	c := nl.AddInput("c")
	u := gen.InputWord(nl, "u", 3)
	v := gen.InputWord(nl, "v", 3)
	nu := gen.BitwiseNot(nl, u)
	nv := gen.BitwiseNot(nl, v)
	w := gen.Mux2Word(nl, c, nu, nv)

	// Propagate u two steps: u -> ~u (trivially), then ~u -> w under c=0.
	props := Propagate(nl, Word{Bits: nu}, Options{})
	var found *Propagation
	for i := range props {
		tgt := props[i].Target.Bits
		if len(tgt) == 3 {
			ok := true
			for j := range tgt {
				// The final or-gates are the w bits.
				if tgt[j] != w[j] {
					ok = false
				}
			}
			if ok {
				found = &props[i]
			}
		}
	}
	if found == nil {
		// The direct guess from ~u jumps one gate (the and); propagation
		// may land on the and-gates first. Use iterative propagation.
		all, _ := PropagateAll(nl, []Word{{Bits: u}}, 4, Options{})
		for _, cand := range all {
			if len(cand.Bits) == 3 && cand.Bits[0] == w[0] && cand.Bits[1] == w[1] && cand.Bits[2] == w[2] {
				return // reached w through intermediate words
			}
		}
		t.Fatalf("u never propagated to w; words found: %d", len(all))
	}
	if v, ok := found.Controls[c]; !ok || v {
		t.Errorf("expected control c=0, got %v", found.Controls)
	}
}

func TestPropagateThroughEnabledAnd(t *testing.T) {
	// w' = w & en (bitwise): propagates under en=1.
	nl := netlist.New("en")
	en := nl.AddInput("en")
	w := gen.InputWord(nl, "w", 4)
	var out []netlist.ID
	for i := range w {
		out = append(out, nl.AddGate(netlist.And, w[i], en))
	}
	props := Propagate(nl, Word{Bits: w}, Options{})
	if len(props) == 0 {
		t.Fatal("no propagation")
	}
	p := props[0]
	if v, ok := p.Controls[en]; !ok || !v {
		t.Errorf("controls = %v, want en=1", p.Controls)
	}
	for i := range p.Negated {
		if p.Negated[i] {
			t.Errorf("bit %d negated, want positive", i)
		}
	}
	_ = out
}

func TestNoFalsePropagation(t *testing.T) {
	// The consumer mixes word bits (bit 0 drives both gates): must not
	// report a clean word propagation for the crossed structure.
	nl := netlist.New("mix")
	w := gen.InputWord(nl, "w", 2)
	nl.AddGate(netlist.And, w[0], w[1]) // single gate consumes both bits
	props := Propagate(nl, Word{Bits: w}, Options{})
	for _, p := range props {
		if len(p.Target.Bits) == 2 && p.Target.Bits[0] == p.Target.Bits[1] {
			t.Errorf("degenerate target %v reported", p.Target.Bits)
		}
	}
}

func TestPropagateBackward(t *testing.T) {
	nl := netlist.New("bwd")
	src := gen.InputWord(nl, "s", 4)
	mid := gen.BitwiseNot(nl, src)
	props := PropagateBackward(nl, Word{Bits: mid}, Options{})
	if len(props) == 0 {
		t.Fatal("no backward propagation")
	}
	p := props[0]
	if !p.Backward {
		t.Error("propagation not marked backward")
	}
	for i, b := range p.Source.Bits {
		if b != src[i] {
			t.Errorf("backward source[%d] = %d, want %d", i, b, src[i])
		}
	}
}

func TestPropagateAllFindsRegisterWord(t *testing.T) {
	// Word propagation across a register: w -> D inputs -> (next cycle
	// values). Forward propagation should reach the and/or network of the
	// register's write mux under we=1.
	nl := netlist.New("reg")
	w := gen.InputWord(nl, "w", 4)
	we := nl.AddInput("we")
	q := gen.Register(nl, w, we)
	all, props := PropagateAll(nl, []Word{{Bits: w}}, 3, Options{})
	if len(all) < 2 {
		t.Fatalf("no propagation happened: %d words %d props", len(all), len(props))
	}
	// Some discovered word must be the and-gates feeding the register's
	// or-gates (w & we), with control we=1.
	found := false
	for _, p := range props {
		if v, ok := p.Controls[we]; ok && v {
			found = true
		}
	}
	if !found {
		t.Error("no propagation discovered the write-enable control")
	}
	_ = q
}
