// Package words implements Algorithm 3 of the paper (Section II-C): word
// identification from aggregated modules and symbolic word propagation
// using five-valued simulation.
//
// Word propagation follows the paper's guess-and-check scheme: candidate
// target words are guessed by grouping the gates driven by a word's bits by
// gate type and input port; control wires are taken from the intersection
// of the target gates' shallow fan-in cones; and each candidate is checked
// by symbolic simulation with the word's bits set to D, up to three control
// wires set to each binary combination, and everything else X. A
// propagation succeeds when every target bit evaluates to D or D̄.
package words

import (
	"fmt"
	"sort"

	"netlistre/internal/module"
	"netlistre/internal/netlist"
	"netlistre/internal/sim"
)

// Word is an ordered set of netlist signals treated as one multi-bit value.
type Word struct {
	Bits []netlist.ID
	// Origin describes how the word was discovered (module name, "propagated",
	// ...).
	Origin string
}

// Key returns a canonical identity for deduplication (order-insensitive).
func (w Word) Key() string {
	s := netlist.SortedIDs(w.Bits)
	b := make([]byte, 0, len(s)*4)
	for _, id := range s {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}

// FromModules extracts words from the port structure of aggregated modules
// (Section II-C: "bits that are inputs/outputs of aggregated modules").
func FromModules(mods []*module.Module) []Word {
	var out []Word
	seen := make(map[string]bool)
	for _, m := range mods {
		var names []string
		for name := range m.Ports {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			port := m.Ports[name]
			if len(port) < 2 {
				continue
			}
			w := Word{Bits: append([]netlist.ID(nil), port...),
				Origin: fmt.Sprintf("%s.%s", m.Name, name)}
			if !seen[w.Key()] {
				seen[w.Key()] = true
				out = append(out, w)
			}
		}
	}
	return out
}

// Propagation records one successful word propagation.
type Propagation struct {
	Source Word
	Target Word
	// Controls is the partial control-wire assignment under which the
	// propagation holds.
	Controls map[netlist.ID]bool
	// Negated[i] reports whether target bit i carries D̄ rather than D.
	Negated []bool
	// Backward is true when the target was found among the source's
	// structural predecessors.
	Backward bool
}

// Options tunes propagation.
type Options struct {
	// ControlDepth is the fan-in depth searched for control wires (the
	// paper's "small depth k").
	ControlDepth int
	// MaxControls is the number of control wires assigned simultaneously
	// (the paper fixes 3).
	MaxControls int
	// MaxControlSet caps the candidate control-wire set to keep subset
	// enumeration tractable.
	MaxControlSet int
	// Interrupt, when non-nil, is polled between candidate checks and
	// between control-assignment simulations; when it returns true,
	// propagation stops and returns the words found so far.
	Interrupt func() bool
}

func (o *Options) defaults() {
	if o.ControlDepth <= 0 {
		o.ControlDepth = 3
	}
	if o.MaxControls <= 0 {
		o.MaxControls = 3
	}
	if o.MaxControlSet <= 0 {
		o.MaxControlSet = 12
	}
}

// Propagate searches for forward propagations of w.
func Propagate(nl *netlist.Netlist, w Word, opt Options) []Propagation {
	opt.defaults()
	var out []Propagation
	for _, cand := range guessForward(nl, w) {
		if opt.Interrupt != nil && opt.Interrupt() {
			break
		}
		if p, ok := checkPropagation(nl, w, cand, opt, false); ok {
			out = append(out, p)
		}
	}
	return out
}

// PropagateBackward searches for backward propagations: words w' among the
// structural predecessors of w such that w' propagates to w.
func PropagateBackward(nl *netlist.Netlist, w Word, opt Options) []Propagation {
	opt.defaults()
	var out []Propagation
	for _, cand := range guessBackward(nl, w) {
		if opt.Interrupt != nil && opt.Interrupt() {
			break
		}
		// Check that cand propagates to w: simulate with cand = D and
		// require w symbolic.
		if p, ok := checkPropagation(nl, cand, w, opt, true); ok {
			out = append(out, p)
		}
	}
	return out
}

// guessForward groups the fanout gates of w's bits by (kind, port).
func guessForward(nl *netlist.Netlist, w Word) []Word {
	type key struct {
		kind netlist.Kind
		port int
	}
	groups := make(map[key][]netlist.ID) // gate output per bit index, Nil when absent/ambiguous
	for i, b := range w.Bits {
		for _, g := range nl.Fanout(b) {
			if !nl.Kind(g).IsGate() {
				continue
			}
			for port, f := range nl.Fanin(g) {
				if f != b {
					continue
				}
				k := key{nl.Kind(g), port}
				if groups[k] == nil {
					groups[k] = make([]netlist.ID, len(w.Bits))
					for j := range groups[k] {
						groups[k][j] = netlist.Nil
					}
				}
				if groups[k][i] == netlist.Nil {
					groups[k][i] = g
				}
			}
		}
	}
	var keys []key
	for k, tgt := range groups {
		complete := true
		seen := make(map[netlist.ID]bool)
		for _, g := range tgt {
			if g == netlist.Nil || seen[g] {
				complete = false
				break
			}
			seen[g] = true
		}
		if complete {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].kind != keys[j].kind {
			return keys[i].kind < keys[j].kind
		}
		return keys[i].port < keys[j].port
	})
	var out []Word
	for _, k := range keys {
		out = append(out, Word{Bits: groups[k], Origin: "guessed"})
	}
	return out
}

// guessBackward proposes predecessor words: for each (port) of the drivers
// of w's bits, the word of that port's fanins.
func guessBackward(nl *netlist.Netlist, w Word) []Word {
	// All drivers must be gates of the same kind and arity.
	kind := netlist.Kind(255)
	arity := -1
	for _, b := range w.Bits {
		if !nl.Kind(b).IsGate() {
			return nil
		}
		if kind == 255 {
			kind = nl.Kind(b)
			arity = len(nl.Fanin(b))
		} else if nl.Kind(b) != kind || len(nl.Fanin(b)) != arity {
			return nil
		}
	}
	var out []Word
	for port := 0; port < arity; port++ {
		bits := make([]netlist.ID, len(w.Bits))
		distinct := make(map[netlist.ID]bool)
		ok := true
		for i, b := range w.Bits {
			f := nl.Fanin(b)[port]
			if distinct[f] {
				ok = false
				break
			}
			distinct[f] = true
			bits[i] = f
		}
		if ok {
			out = append(out, Word{Bits: bits, Origin: "guessed-backward"})
		}
	}
	return out
}

// controlWires returns the intersection of the depth-bounded fan-in cones
// of the target gates, excluding the source word bits.
func controlWires(nl *netlist.Netlist, src, tgt Word, opt Options) []netlist.ID {
	inSrc := make(map[netlist.ID]bool, len(src.Bits))
	for _, b := range src.Bits {
		inSrc[b] = true
	}
	counts := make(map[netlist.ID]int)
	for _, g := range tgt.Bits {
		seen := make(map[netlist.ID]bool)
		frontier := []netlist.ID{g}
		for d := 0; d < opt.ControlDepth; d++ {
			var nextLayer []netlist.ID
			for _, x := range frontier {
				for _, f := range nl.Fanin(x) {
					if inSrc[f] || seen[f] {
						continue
					}
					seen[f] = true
					nextLayer = append(nextLayer, f)
				}
			}
			frontier = nextLayer
		}
		for x := range seen {
			counts[x]++
		}
	}
	var out []netlist.ID
	for x, c := range counts {
		if c == len(tgt.Bits) {
			out = append(out, x)
		}
	}
	out = netlist.SortedIDs(out)
	if len(out) > opt.MaxControlSet {
		out = out[:opt.MaxControlSet]
	}
	return out
}

// checkPropagation runs the symbolic simulations. src bits are forced to D
// (cutting them loose from their own logic, as in the paper's local-netlist
// simulation); combinations of up to MaxControls control wires are swept
// over all binary values; all other boundary signals are X.
func checkPropagation(nl *netlist.Netlist, src, tgt Word, opt Options, backward bool) (Propagation, bool) {
	assignable := controlWires(nl, src, tgt, opt)

	base := make(map[netlist.ID]sim.Value, len(src.Bits))
	for _, b := range src.Bits {
		base[b] = sim.D
	}

	try := func(ctrl map[netlist.ID]bool) (Propagation, bool) {
		assign := make(map[netlist.ID]sim.Value, len(base)+len(ctrl))
		for k, v := range base {
			assign[k] = v
		}
		for c, v := range ctrl {
			if v {
				assign[c] = sim.One
			} else {
				assign[c] = sim.Zero
			}
		}
		vals := sim.Run(nl, assign)
		neg := make([]bool, len(tgt.Bits))
		for i, g := range tgt.Bits {
			switch vals[g] {
			case sim.D:
				neg[i] = false
			case sim.DBar:
				neg[i] = true
			default:
				return Propagation{}, false
			}
		}
		return Propagation{
			Source:   src,
			Target:   tgt,
			Controls: ctrl,
			Negated:  neg,
			Backward: backward,
		}, true
	}

	// No controls first.
	if p, ok := try(map[netlist.ID]bool{}); ok {
		return p, true
	}
	// Subsets of size 1..MaxControls, all binary assignments.
	n := len(assignable)
	for size := 1; size <= opt.MaxControls && size <= n; size++ {
		idx := make([]int, size)
		for i := range idx {
			idx[i] = i
		}
		for {
			if opt.Interrupt != nil && opt.Interrupt() {
				return Propagation{}, false
			}
			for mask := 0; mask < 1<<uint(size); mask++ {
				ctrl := make(map[netlist.ID]bool, size)
				for i, ii := range idx {
					ctrl[assignable[ii]] = mask>>uint(i)&1 == 1
				}
				if p, ok := try(ctrl); ok {
					return p, true
				}
			}
			// Next combination.
			i := size - 1
			for i >= 0 && idx[i] == n-size+i {
				i--
			}
			if i < 0 {
				break
			}
			idx[i]++
			for j := i + 1; j < size; j++ {
				idx[j] = idx[j-1] + 1
			}
		}
	}
	return Propagation{}, false
}

// PropagateAll iteratively expands a word set with forward and backward
// propagation until a fixed point or the given round limit.
func PropagateAll(nl *netlist.Netlist, seeds []Word, rounds int, opt Options) ([]Word, []Propagation) {
	opt.defaults()
	seen := make(map[string]bool)
	var all []Word
	var frontier []Word
	push := func(w Word) bool {
		k := w.Key()
		if seen[k] {
			return false
		}
		seen[k] = true
		all = append(all, w)
		frontier = append(frontier, w)
		return true
	}
	for _, w := range seeds {
		push(w)
	}
	var props []Propagation
	for r := 0; r < rounds && len(frontier) > 0; r++ {
		work := frontier
		frontier = nil
		for _, w := range work {
			if opt.Interrupt != nil && opt.Interrupt() {
				return all, props
			}
			for _, p := range Propagate(nl, w, opt) {
				props = append(props, p)
				t := p.Target
				t.Origin = "propagated"
				push(t)
			}
			for _, p := range PropagateBackward(nl, w, opt) {
				props = append(props, p)
				s := p.Source
				s.Origin = "propagated-backward"
				push(s)
			}
		}
	}
	return all, props
}
