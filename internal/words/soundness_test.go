package words

// Cross-validation of the five-valued propagation claims with SAT: a
// reported propagation asserts that, in the local netlist with the source
// word cut free and the control wires fixed, every target bit equals the
// corresponding source bit (xor the reported negation). This test rebuilds
// that local region explicitly and discharges the claim with the CDCL
// solver — two independent engines agreeing on every claim.

import (
	"fmt"
	"testing"

	"netlistre/internal/gen"
	"netlistre/internal/netlist"
	"netlistre/internal/sat"
)

// extractLocal rebuilds the region feeding the target bits, cutting at the
// source word's bits (fresh inputs) and at the control wires (fixed
// constants); all other boundary signals become fresh free inputs.
func extractLocal(nl *netlist.Netlist, p Propagation) (*netlist.Netlist, map[netlist.ID]netlist.ID) {
	sub := netlist.New("local")
	m := make(map[netlist.ID]netlist.ID)
	for i, b := range p.Source.Bits {
		m[b] = sub.AddInput(fmt.Sprintf("w%d", i))
	}
	for c, v := range p.Controls {
		m[c] = sub.AddConst(v)
	}
	var resolve func(id netlist.ID) netlist.ID
	resolve = func(id netlist.ID) netlist.ID {
		if r, ok := m[id]; ok {
			return r
		}
		node := nl.Node(id)
		var r netlist.ID
		switch {
		case node.Kind == netlist.Const0 || node.Kind == netlist.Const1:
			r = sub.AddConst(node.Kind == netlist.Const1)
		case node.Kind.IsConeInput():
			r = sub.AddInput(fmt.Sprintf("x%d", id))
		default:
			fan := make([]netlist.ID, len(node.Fanin))
			for i, f := range node.Fanin {
				fan[i] = resolve(f)
			}
			r = sub.AddGate(node.Kind, fan...)
		}
		m[id] = r
		return r
	}
	for _, t := range p.Target.Bits {
		resolve(t)
	}
	return sub, m
}

// verifyPropagationSAT discharges one claim: for every assignment of the
// free signals, target_i == source_i ^ negated_i.
func verifyPropagationSAT(t *testing.T, nl *netlist.Netlist, p Propagation) {
	t.Helper()
	sub, m := extractLocal(nl, p)
	s := sat.New()
	e := sat.NewEncoder(s, sub)
	for i, tgt := range p.Target.Bits {
		src := m[p.Source.Bits[i]]
		lt := e.LitOf(m[tgt])
		ls := e.LitOf(src)
		if p.Negated[i] {
			ls = ls.Neg()
		}
		if s.Solve(e.NotEqualWitness(lt, ls)) != sat.Unsat {
			t.Errorf("claim refuted: target bit %d != source bit (neg=%v, controls=%v)",
				i, p.Negated[i], p.Controls)
		}
	}
}

// TestPropagationClaimsSATVerified checks every reported propagation: the
// five-valued simulation treats all non-source, non-control signals as X
// and still demands a D/D̄ outcome, so its claims must hold for ALL values
// of the free signals — exactly the universally-quantified statement the
// SAT check discharges.
func TestPropagationClaimsSATVerified(t *testing.T) {
	// A collection of circuits with rich propagation structure.
	builders := []func() (*netlist.Netlist, []Word){
		func() (*netlist.Netlist, []Word) {
			nl := netlist.New("selector")
			c := nl.AddInput("c")
			u := gen.InputWord(nl, "u", 4)
			v := gen.InputWord(nl, "v", 4)
			nu := gen.BitwiseNot(nl, u)
			nv := gen.BitwiseNot(nl, v)
			gen.Mux2Word(nl, c, nu, nv)
			return nl, []Word{{Bits: u}, {Bits: v}}
		},
		func() (*netlist.Netlist, []Word) {
			nl := netlist.New("gated")
			en := nl.AddInput("en")
			w := gen.InputWord(nl, "w", 5)
			var g []netlist.ID
			for i := range w {
				g = append(g, nl.AddGate(netlist.And, w[i], en))
			}
			var h []netlist.ID
			for i := range g {
				h = append(h, nl.AddGate(netlist.Xnor, g[i], en))
			}
			_ = h
			return nl, []Word{{Bits: w}}
		},
		func() (*netlist.Netlist, []Word) {
			nl := netlist.New("register")
			w := gen.InputWord(nl, "w", 4)
			we := nl.AddInput("we")
			gen.Register(nl, w, we)
			return nl, []Word{{Bits: w}}
		},
	}

	total := 0
	for bi, build := range builders {
		nl, seeds := build()
		_, props := PropagateAll(nl, seeds, 4, Options{})
		for _, p := range props {
			verifyPropagationSAT(t, nl, p)
			total++
		}
		if total == 0 {
			t.Errorf("builder %d: no propagations to verify", bi)
		}
	}
	t.Logf("SAT-verified %d propagation claims", total)
}
