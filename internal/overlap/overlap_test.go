package overlap

import (
	"math/rand"
	"testing"

	"netlistre/internal/module"
	"netlistre/internal/netlist"
)

func ids(xs ...int) []netlist.ID {
	out := make([]netlist.ID, len(xs))
	for i, x := range xs {
		out[i] = netlist.ID(x)
	}
	return out
}

// figure8 builds the paper's Figure 8 scenario: a 5-bit mux (3 gates per
// slice + 1 shared inverter) whose slices 4 and 5 overlap a 40-element RAM.
func figure8() []*module.Module {
	mux := module.New(module.Mux, 5, nil)
	var slices [][]netlist.ID
	var all []netlist.ID
	for s := 0; s < 5; s++ {
		sl := ids(10*s+1, 10*s+2, 10*s+3)
		slices = append(slices, sl)
		all = append(all, sl...)
	}
	all = append(all, 99) // shared inverter
	for i := range slices {
		slices[i] = append(slices[i], 99)
	}
	mux.SetElements(all)
	mux.Slices = slices

	ramElems := ids(31, 32, 33, 41, 42, 43) // overlap slices 4,5
	for i := 200; i < 234; i++ {
		ramElems = append(ramElems, netlist.ID(i))
	}
	ram := module.New(module.RAM, 40, ramElems)
	return []*module.Module{mux, ram}
}

func TestFigure8BasicFormulation(t *testing.T) {
	mods := figure8()
	res, err := Resolve(mods, Options{Objective: MaxCoverage, Sliceable: false})
	if err != nil {
		t.Fatal(err)
	}
	// Basic: whole mux (16) vs whole RAM (40): RAM wins, mux discarded.
	if len(res.Selected) != 1 || res.Selected[0].Type != module.RAM {
		t.Fatalf("selected = %v", names(res.Selected))
	}
	if res.Coverage != 40 {
		t.Errorf("coverage = %d, want 40", res.Coverage)
	}
}

func TestFigure8SliceableFormulation(t *testing.T) {
	mods := figure8()
	res, err := Resolve(mods, Options{Objective: MaxCoverage, Sliceable: true})
	if err != nil {
		t.Fatal(err)
	}
	// Sliceable: RAM (40) + mux slices 1-3 (9) + shared inverter (1) = 50.
	if res.Coverage != 50 {
		t.Fatalf("coverage = %d, want 50 (selected %v)", res.Coverage, names(res.Selected))
	}
	if _, ok := module.Disjoint(res.Selected); !ok {
		t.Error("selection overlaps")
	}
	var mux *module.Module
	for _, m := range res.Selected {
		if m.Type == module.Mux {
			mux = m
		}
	}
	if mux == nil || len(mux.Slices) != 3 {
		t.Errorf("mux not sliced to 3 slices: %v", names(res.Selected))
	}
}

func TestMinModulesObjective(t *testing.T) {
	// Three disjoint modules of sizes 30, 20, 10; target 45 -> {30, 20}.
	var mods []*module.Module
	base := 0
	for _, size := range []int{30, 20, 10} {
		var e []netlist.ID
		for i := 0; i < size; i++ {
			e = append(e, netlist.ID(base+i))
		}
		base += size
		mods = append(mods, module.New(module.Unknown, size, e))
	}
	res, err := Resolve(mods, Options{Objective: MinModules, CoverageTarget: 45})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 2 {
		t.Errorf("selected %d modules, want 2", len(res.Selected))
	}
	if res.Coverage < 45 {
		t.Errorf("coverage = %d, want >= 45", res.Coverage)
	}
}

func TestMinModulesInfeasibleTarget(t *testing.T) {
	m := module.New(module.Unknown, 3, ids(1, 2, 3))
	_, err := Resolve([]*module.Module{m}, Options{Objective: MinModules, CoverageTarget: 10})
	if err == nil {
		t.Error("expected infeasibility error")
	}
}

func TestSliceableNeverWorseThanBasic(t *testing.T) {
	// Property from Table 4: sliceable coverage >= basic coverage on random
	// overlapping module sets.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		var mods []*module.Module
		nMods := 3 + rng.Intn(5)
		for mi := 0; mi < nMods; mi++ {
			nSlices := 2 + rng.Intn(4)
			var slices [][]netlist.ID
			var all []netlist.ID
			for s := 0; s < nSlices; s++ {
				var sl []netlist.ID
				for k := 0; k < 1+rng.Intn(3); k++ {
					sl = append(sl, netlist.ID(rng.Intn(60)))
				}
				slices = append(slices, sl)
				all = append(all, sl...)
			}
			m := module.New(module.Mux, nSlices, all)
			if rng.Intn(2) == 0 {
				m.Slices = slices
			}
			mods = append(mods, m)
		}
		basic, err := Resolve(mods, Options{Objective: MaxCoverage})
		if err != nil {
			t.Fatal(err)
		}
		sliced, err := Resolve(mods, Options{Objective: MaxCoverage, Sliceable: true})
		if err != nil {
			t.Fatal(err)
		}
		if sliced.Coverage < basic.Coverage {
			t.Fatalf("trial %d: sliceable %d < basic %d", trial, sliced.Coverage, basic.Coverage)
		}
		if _, ok := module.Disjoint(basic.Selected); !ok {
			t.Fatalf("trial %d: basic selection overlaps", trial)
		}
		if _, ok := module.Disjoint(sliced.Selected); !ok {
			t.Fatalf("trial %d: sliceable selection overlaps", trial)
		}
	}
}

func TestMinSlicesEnforced(t *testing.T) {
	// A 3-slice module fully overlapped on 2 slices: with MinSlices=2 the
	// remaining single slice cannot stand alone, so the big competitor
	// wins everything.
	mux := module.New(module.Mux, 3, ids(1, 2, 3))
	mux.Slices = [][]netlist.ID{ids(1), ids(2), ids(3)}
	big := module.New(module.RAM, 10, ids(2, 3, 10, 11, 12, 13, 14, 15, 16, 17))
	res, err := Resolve([]*module.Module{mux, big}, Options{
		Objective: MaxCoverage, Sliceable: true, MinSlices: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Selected {
		if m.Type == module.Mux {
			t.Errorf("mux selected with %d slices despite MinSlices=2", len(m.Slices))
		}
	}
	if res.Coverage != 10 {
		t.Errorf("coverage = %d, want 10", res.Coverage)
	}
}

func names(mods []*module.Module) []string {
	var out []string
	for _, m := range mods {
		out = append(out, m.Name)
	}
	return out
}
