// Package overlap implements Section IV of the paper: selecting a
// non-overlapping subset of inferred modules with a 0-1 integer linear
// program. Both the basic formulation (one binary per module) and the
// sliceable formulation (per-slice binaries with linking and MinSlices
// constraints, Section IV-B) are provided, each with two objectives:
// maximize coverage, or minimize the number of output modules subject to a
// coverage target.
package overlap

import (
	"fmt"
	"sort"

	"netlistre/internal/ilp"
	"netlistre/internal/module"
	"netlistre/internal/netlist"
)

// Objective selects the optimization target.
type Objective int

// Objectives.
const (
	// MaxCoverage maximizes the number of covered elements (IV-A.3).
	MaxCoverage Objective = iota
	// MinModules minimizes the number of selected modules subject to
	// covering at least CoverageTarget elements (IV-A.4).
	MinModules
)

// Options configures resolution.
type Options struct {
	Objective Objective
	// CoverageTarget is the element floor for MinModules.
	CoverageTarget int
	// Sliceable enables the per-slice formulation of Section IV-B.
	Sliceable bool
	// MinSlices is the smallest number of slices a selected sliceable
	// module must keep (the paper uses 2).
	MinSlices int
	// NodeLimit caps the branch-and-bound search per component (0 = a
	// default of 1M nodes, a few seconds on the largest components). When
	// the limit is hit the best incumbent is used and Result.Optimal is
	// false.
	NodeLimit int64
	// Interrupt, when non-nil, is polled inside the ILP searches; when it
	// returns true each remaining search stops at its best incumbent and
	// Result.Optimal is false (the selection stays feasible and
	// non-overlapping).
	Interrupt func() bool
}

// defaultNodeLimit bounds per-component search time. Most components solve
// to proven optimality in well under this; a handful of dense
// RAM-vs-decomposition components stop at the limit with the warm-start
// incumbent (the basic-formulation optimum extended to slices), which is
// within noise of optimal in practice — Result.Optimal reports the
// distinction honestly.
const defaultNodeLimit = 200_000

// Result reports the selection.
type Result struct {
	// Selected holds the chosen modules. Sliceable modules may be
	// rebuilt with a subset of their slices.
	Selected []*module.Module
	// Coverage is the number of elements covered by Selected.
	Coverage int
	// Optimal is false when the solver hit its node limit.
	Optimal bool
}

// Resolve selects a non-overlapping subset of mods.
//
// For MaxCoverage the problem decomposes exactly: modules overlapping no
// other module are always selected, and overlap-connected components are
// independent sub-problems, each solved with its own (much smaller) ILP.
// MinModules couples everything through the global coverage floor and is
// solved as one program.
func Resolve(mods []*module.Module, opt Options) (Result, error) {
	if opt.MinSlices <= 0 {
		opt.MinSlices = 2
	}
	if opt.NodeLimit == 0 {
		opt.NodeLimit = defaultNodeLimit
	}
	if opt.Objective == MinModules {
		b := newBuilder(mods, opt)
		sol, err := ilp.Solve(b.problem, ilp.Options{NodeLimit: opt.NodeLimit, Interrupt: opt.Interrupt})
		if err != nil {
			return Result{}, fmt.Errorf("overlap: %w", err)
		}
		return b.extract(sol), nil
	}

	// Union-find over modules sharing elements.
	parent := make([]int, len(mods))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	owner := make(map[netlist.ID]int)
	for i, m := range mods {
		for _, g := range m.Elements {
			if j, ok := owner[g]; ok {
				parent[find(i)] = find(j)
			} else {
				owner[g] = i
			}
		}
	}

	var res Result
	res.Optimal = true
	comps := make(map[int][]int)
	for i := range mods {
		comps[find(i)] = append(comps[find(i)], i)
	}
	// Singleton components are isolated modules: always selected under
	// MaxCoverage. Collect then sort by module index: map iteration order
	// must not leak into the selection order (the report is promised to
	// be byte-identical across runs and worker counts).
	var singles []int
	for r, members := range comps {
		if len(members) == 1 {
			singles = append(singles, members[0])
			delete(comps, r)
		}
	}
	sortInts(singles)
	for _, i := range singles {
		res.Selected = append(res.Selected, mods[i])
	}
	var reps []int
	for r := range comps {
		reps = append(reps, r)
	}
	sortInts(reps)
	for _, r := range reps {
		sub := make([]*module.Module, len(comps[r]))
		for k, i := range comps[r] {
			sub[k] = mods[i]
		}
		b := newBuilder(sub, opt)
		ilpOpt := ilp.Options{NodeLimit: opt.NodeLimit, Interrupt: opt.Interrupt}
		if opt.Sliceable {
			// Warm start the sliceable search with the basic formulation's
			// optimum: a whole-module selection is always feasible at slice
			// granularity, and the strong incumbent prunes most of the
			// slice-rearrangement space.
			basicOpt := opt
			basicOpt.Sliceable = false
			bb := newBuilder(sub, basicOpt)
			if bsol, err := ilp.Solve(bb.problem, ilp.Options{NodeLimit: opt.NodeLimit / 4, Interrupt: opt.Interrupt}); err == nil {
				inc := make([]bool, b.problem.NumVars)
				for i := range sub {
					if !bsol.Values[bb.varOfMod[i]] {
						continue
					}
					inc[b.varOfMod[i]] = true
					for _, sv := range b.sliceVars[i] {
						inc[sv] = true
					}
				}
				ilpOpt.Incumbent = inc
			}
		}
		sol, err := ilp.Solve(b.problem, ilpOpt)
		if err != nil {
			return Result{}, fmt.Errorf("overlap: %w", err)
		}
		part := b.extract(sol)
		res.Selected = append(res.Selected, part.Selected...)
		res.Optimal = res.Optimal && part.Optimal
	}
	res.Coverage = module.CoverageCount(res.Selected)
	return res, nil
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// builder translates modules into an ILP.
type builder struct {
	mods    []*module.Module
	opt     Options
	problem *ilp.Problem

	// Per-module variable layout.
	varOfMod  []int   // x_i for unsliceable modules, x_{i0} for sliceable
	sliceVars [][]int // x_{ij} per slice, nil for unsliceable
	// varFor(g, i) resolution table: for each module, element -> variable.
	elemVar []map[netlist.ID]int
	size    []int64 // Size(x) per variable
}

func newBuilder(mods []*module.Module, opt Options) *builder {
	b := &builder{mods: mods, opt: opt, problem: &ilp.Problem{}}
	b.varOfMod = make([]int, len(mods))
	b.sliceVars = make([][]int, len(mods))
	b.elemVar = make([]map[netlist.ID]int, len(mods))

	newVar := func() int {
		v := b.problem.NumVars
		b.problem.NumVars++
		b.size = append(b.size, 0)
		return v
	}

	for i, m := range mods {
		b.elemVar[i] = make(map[netlist.ID]int, len(m.Elements))
		if !opt.Sliceable || !m.Sliceable() {
			x := newVar()
			b.varOfMod[i] = x
			for _, g := range m.Elements {
				b.elemVar[i][g] = x
			}
			continue
		}
		// Sliceable: x_{i0} plus one variable per slice. Elements in
		// exactly one slice map to that slice's variable; everything else
		// (shared or unassigned) maps to x_{i0}.
		x0 := newVar()
		b.varOfMod[i] = x0
		owner := make(map[netlist.ID]int, len(m.Elements)) // -1 = shared
		for si, s := range m.Slices {
			for _, g := range s {
				if prev, ok := owner[g]; ok && prev != si {
					owner[g] = -1
				} else {
					owner[g] = si
				}
			}
		}
		svars := make([]int, len(m.Slices))
		for si := range m.Slices {
			svars[si] = newVar()
		}
		b.sliceVars[i] = svars
		for _, g := range m.Elements {
			si, ok := owner[g]
			if !ok || si == -1 {
				b.elemVar[i][g] = x0
			} else {
				b.elemVar[i][g] = svars[si]
			}
		}
		// Linking: x_{i0} >= x_{ij}.
		for _, sv := range svars {
			b.problem.AddConstraint([]ilp.Term{{Var: x0, Coef: 1}, {Var: sv, Coef: -1}}, ilp.GE, 0)
		}
		// MinSlices: sum_j x_{ij} - MinSlices*x_{i0} >= 0.
		terms := make([]ilp.Term, 0, len(svars)+1)
		for _, sv := range svars {
			terms = append(terms, ilp.Term{Var: sv, Coef: 1})
		}
		minSlices := opt.MinSlices
		if minSlices > len(svars) {
			minSlices = len(svars)
		}
		terms = append(terms, ilp.Term{Var: x0, Coef: -int64(minSlices)})
		b.problem.AddConstraint(terms, ilp.GE, 0)
	}

	// Sizes.
	for i, m := range mods {
		for _, g := range m.Elements {
			b.size[b.elemVar[i][g]]++
		}
	}

	// Overlap constraints: one per element covered by multiple modules.
	covering := make(map[netlist.ID][]int)
	for i, m := range mods {
		for _, g := range m.Elements {
			covering[g] = append(covering[g], i)
		}
	}
	// Constraint rows are added in sorted element order: map iteration
	// order must not reach the solver. An exact solve is order-invariant,
	// but a node-limited search stops at whatever incumbent the traversal
	// found first, and the traversal follows problem layout — so row order
	// is part of the byte-identical-reports contract.
	shared := make([]netlist.ID, 0, len(covering))
	for g, owners := range covering {
		if len(owners) >= 2 {
			shared = append(shared, g)
		}
	}
	sortIDs(shared)
	seenRows := make(map[string]bool)
	for _, g := range shared {
		owners := covering[g]
		vars := make(map[int]bool, len(owners))
		for _, i := range owners {
			vars[b.elemVar[i][g]] = true
		}
		if len(vars) < 2 {
			continue
		}
		terms := make([]ilp.Term, 0, len(vars))
		key := ""
		for v := range vars {
			terms = append(terms, ilp.Term{Var: v, Coef: 1})
		}
		// Canonicalize for deduplication.
		sortTerms(terms)
		for _, t := range terms {
			key += fmt.Sprint(t.Var, ",")
		}
		if seenRows[key] {
			continue
		}
		seenRows[key] = true
		b.problem.AddConstraint(terms, ilp.LE, 1)
	}

	// Objective.
	b.problem.Objective = make([]int64, b.problem.NumVars)
	switch opt.Objective {
	case MaxCoverage:
		// Lexicographic: maximize covered elements, then prefer FEWER
		// modules. Scaling sizes by K > #modules and charging one unit per
		// selected module representative makes the module-count term a
		// pure tie-breaker; it can never trade away an element of
		// coverage. This is what keeps a verified RAM ahead of the
		// equal-coverage pile of muxes and per-word registers it overlaps
		// (abstraction quality, Section VI-A).
		b.problem.Sense = ilp.Maximize
		k := int64(len(mods) + 1)
		for v, s := range b.size {
			b.problem.Objective[v] = s * k
		}
		for i := range mods {
			b.problem.Objective[b.varOfMod[i]] -= 1
		}
	case MinModules:
		b.problem.Sense = ilp.Minimize
		for i := range mods {
			b.problem.Objective[b.varOfMod[i]] = 1
		}
		// Coverage floor: sum of Size(x)*x >= target.
		var terms []ilp.Term
		for v, s := range b.size {
			if s > 0 {
				terms = append(terms, ilp.Term{Var: v, Coef: s})
			}
		}
		b.problem.AddConstraint(terms, ilp.GE, int64(opt.CoverageTarget))
	}
	return b
}

func sortIDs(xs []netlist.ID) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

func sortTerms(terms []ilp.Term) {
	for i := 1; i < len(terms); i++ {
		for j := i; j > 0 && terms[j].Var < terms[j-1].Var; j-- {
			terms[j], terms[j-1] = terms[j-1], terms[j]
		}
	}
}

// extract rebuilds the selected module set from the ILP solution.
func (b *builder) extract(sol ilp.Solution) Result {
	var res Result
	res.Optimal = sol.Optimal
	for i, m := range b.mods {
		if !sol.Values[b.varOfMod[i]] {
			continue
		}
		if b.sliceVars[i] == nil {
			res.Selected = append(res.Selected, m)
			continue
		}
		// Rebuild from the selected slices + the shared bucket.
		var kept [][]netlist.ID
		var elements []netlist.ID
		for si, sv := range b.sliceVars[i] {
			if sol.Values[sv] {
				kept = append(kept, m.Slices[si])
				elements = append(elements, m.Slices[si]...)
			}
		}
		for _, g := range m.Elements {
			if b.elemVar[i][g] == b.varOfMod[i] {
				elements = append(elements, g)
			}
		}
		sliced := module.New(m.Type, len(kept), elements)
		sliced.Name = m.Name
		sliced.Slices = kept
		sliced.Ports = m.Ports
		sliced.Attr = m.Attr
		if len(kept) < len(m.Slices) {
			sliced.Name = fmt.Sprintf("%s(sliced %d/%d)", m.Name, len(kept), len(m.Slices))
		}
		res.Selected = append(res.Selected, sliced)
	}
	res.Coverage = module.CoverageCount(res.Selected)
	return res
}
