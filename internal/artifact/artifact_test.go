package artifact

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestHasherDeterministicAndSeparated(t *testing.T) {
	digest := func(build func(h *Hasher)) Digest {
		h := NewHasher("test-v1")
		build(h)
		return h.Sum()
	}
	a := digest(func(h *Hasher) { h.Str("stage"); h.Int(3); h.Bool(true) })
	b := digest(func(h *Hasher) { h.Str("stage"); h.Int(3); h.Bool(true) })
	if a != b {
		t.Fatalf("identical inputs hashed differently: %s vs %s", a, b)
	}
	variants := []Digest{
		digest(func(h *Hasher) { h.Str("stage"); h.Int(3); h.Bool(false) }),
		digest(func(h *Hasher) { h.Str("stage"); h.Int(4); h.Bool(true) }),
		digest(func(h *Hasher) { h.Str("stagf"); h.Int(3); h.Bool(true) }),
		digest(func(h *Hasher) { h.Str("st"); h.Str("age"); h.Int(3); h.Bool(true) }),
	}
	seen := map[Digest]bool{a: true}
	for i, v := range variants {
		if seen[v] {
			t.Errorf("variant %d collided with an earlier digest", i)
		}
		seen[v] = true
	}
	if NewHasher("domain-a").Sum() == NewHasher("domain-b").Sum() {
		t.Error("domain labels do not separate digests")
	}
}

func TestStoreDoCachesAndCounts(t *testing.T) {
	s := NewStore(8)
	calls := 0
	compute := func() (*Artifact, bool) {
		calls++
		return &Artifact{Stage: "x", Digest: "k1", Value: 42, Items: 1}, true
	}
	a, cached, err := s.Do(context.Background(), "k1", compute)
	if err != nil || cached || a.Value != 42 {
		t.Fatalf("first Do = (%v, %v, %v), want computed 42", a, cached, err)
	}
	a, cached, err = s.Do(context.Background(), "k1", compute)
	if err != nil || !cached || a.Value != 42 {
		t.Fatalf("second Do = (%v, %v, %v), want cached 42", a, cached, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	s := NewStore(2)
	for i := 0; i < 3; i++ {
		key := Digest(fmt.Sprintf("k%d", i))
		i := i
		s.Do(context.Background(), key, func() (*Artifact, bool) {
			return &Artifact{Digest: key, Value: i}, true
		})
	}
	if _, ok := s.Get("k0"); ok {
		t.Error("k0 should have been evicted")
	}
	if _, ok := s.Get("k2"); !ok {
		t.Error("k2 should still be stored")
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction / 2 entries", st)
	}
}

// TestStoreSingleFlight races many goroutines at one key: the compute
// function must run exactly once and everyone must see its value.
func TestStoreSingleFlight(t *testing.T) {
	s := NewStore(8)
	var calls int32
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			a, _, err := s.Do(context.Background(), "shared", func() (*Artifact, bool) {
				atomic.AddInt32(&calls, 1)
				time.Sleep(5 * time.Millisecond) // widen the race window
				return &Artifact{Digest: "shared", Value: "v"}, true
			})
			if err != nil || a.Value != "v" {
				t.Errorf("Do = (%v, %v)", a, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
}

// TestStoreDeclinedPublication: a producer that returns ok=false (its run
// was interrupted) must not poison the store; the next caller recomputes.
func TestStoreDeclinedPublication(t *testing.T) {
	s := NewStore(8)
	a, cached, err := s.Do(context.Background(), "k", func() (*Artifact, bool) {
		return &Artifact{Digest: "k", Value: "partial"}, false
	})
	if err != nil || cached || a.Value != "partial" {
		t.Fatalf("declined Do = (%v, %v, %v)", a, cached, err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("declined artifact was stored")
	}
	a, cached, _ = s.Do(context.Background(), "k", func() (*Artifact, bool) {
		return &Artifact{Digest: "k", Value: "complete"}, true
	})
	if cached || a.Value != "complete" {
		t.Fatalf("recompute = (%v, %v), want fresh complete value", a, cached)
	}
	if a, ok := s.Get("k"); !ok || a.Value != "complete" {
		t.Fatal("complete artifact was not stored")
	}
}

// TestStoreWaiterTakesOverAfterDecline: a waiter blocked on a declining
// leader must retry and run its own computation.
func TestStoreWaiterTakesOverAfterDecline(t *testing.T) {
	s := NewStore(8)
	leaderIn := make(chan struct{})
	waiterReady := make(chan struct{})
	done := make(chan string, 1)
	go func() {
		s.Do(context.Background(), "k", func() (*Artifact, bool) {
			close(leaderIn)
			<-waiterReady
			time.Sleep(2 * time.Millisecond) // let the waiter block on the flight
			return &Artifact{Digest: "k", Value: "partial"}, false
		})
	}()
	<-leaderIn
	close(waiterReady)
	go func() {
		a, cached, err := s.Do(context.Background(), "k", func() (*Artifact, bool) {
			return &Artifact{Digest: "k", Value: "retried"}, true
		})
		if err != nil || cached {
			done <- fmt.Sprintf("waiter Do = (%v, %v, %v)", a, cached, err)
			return
		}
		done <- a.Value.(string)
	}()
	if got := <-done; got != "retried" {
		t.Fatalf("waiter result = %q, want it to take over and compute", got)
	}
}

// TestStoreWaiterHonorsContext: a waiter whose context dies while the
// leader is still computing gets the context error instead of blocking.
func TestStoreWaiterHonorsContext(t *testing.T) {
	s := NewStore(8)
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	go func() {
		s.Do(context.Background(), "k", func() (*Artifact, bool) {
			close(leaderIn)
			<-release
			return &Artifact{Digest: "k", Value: "v"}, true
		})
	}()
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := s.Do(ctx, "k", func() (*Artifact, bool) {
		t.Error("waiter must not compute while the leader holds the flight")
		return nil, false
	})
	if err != context.Canceled {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}
	close(release)
}

// TestStorePanicReleasesFlight: a panicking compute must release the
// flight so later callers are not deadlocked, and must propagate.
func TestStorePanicReleasesFlight(t *testing.T) {
	s := NewStore(8)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate out of Do")
			}
		}()
		s.Do(context.Background(), "k", func() (*Artifact, bool) {
			panic("boom")
		})
	}()
	a, cached, err := s.Do(context.Background(), "k", func() (*Artifact, bool) {
		return &Artifact{Digest: "k", Value: "ok"}, true
	})
	if err != nil || cached || a.Value != "ok" {
		t.Fatalf("post-panic Do = (%v, %v, %v), want a fresh computation", a, cached, err)
	}
}
