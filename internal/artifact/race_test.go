package artifact

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestStoreConcurrentMixedUse hammers one Store from many goroutines with
// a small key space so hits, misses, single-flight joins, declined
// publications, and LRU evictions all interleave. Run under -race this
// checks the locking; the assertions check that every caller observes a
// value consistent with its key and that the counters stay coherent.
func TestStoreConcurrentMixedUse(t *testing.T) {
	const (
		goroutines = 16
		iterations = 300
		keySpace   = 12
		storeMax   = 8 // below keySpace, so evictions happen under load
	)
	st := NewStore(storeMax)
	var computes [keySpace]int64

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			ctx := context.Background()
			for i := 0; i < iterations; i++ {
				k := rng.Intn(keySpace)
				key := Digest(fmt.Sprintf("key-%d", k))
				if rng.Intn(4) == 0 {
					if art, ok := st.Get(key); ok && art.Value.(int) != k {
						t.Errorf("Get(%s) returned value %v", key, art.Value)
					}
					continue
				}
				decline := rng.Intn(8) == 0
				art, _, err := st.Do(ctx, key, func() (*Artifact, bool) {
					atomic.AddInt64(&computes[k], 1)
					return &Artifact{Stage: "race", Digest: key, Value: k}, !decline
				})
				if err != nil {
					t.Errorf("Do(%s): %v", key, err)
					continue
				}
				if art.Value.(int) != k {
					t.Errorf("Do(%s) returned value %v", key, art.Value)
				}
			}
		}(g)
	}
	wg.Wait()

	stats := st.Stats()
	if stats.Hits+stats.Misses == 0 {
		t.Fatal("no store traffic recorded")
	}
	var total int64
	for k := range computes {
		total += computes[k]
	}
	// Every miss leads a flight, and only flight leaders run compute.
	if total != stats.Misses {
		t.Errorf("compute ran %d times but store counted %d misses", total, stats.Misses)
	}
	if stats.Entries > storeMax {
		t.Errorf("store holds %d entries, max is %d", stats.Entries, storeMax)
	}
	// The surviving entries must still map keys to their values.
	for k := 0; k < keySpace; k++ {
		key := Digest(fmt.Sprintf("key-%d", k))
		if art, ok := st.Get(key); ok && art.Value.(int) != k {
			t.Errorf("final Get(%s) returned value %v", key, art.Value)
		}
	}
}
