// Package artifact is the typed, content-addressed store behind the
// portfolio's per-stage memoization. Every pipeline stage result — a
// bitslice match set, a latch-connection graph, a module list, a word set,
// the resolved overlap selection — is wrapped in an Artifact whose Digest
// is derived from the full input closure of the stage: the netlist
// fingerprint, the stage name, a canonical digest of the stage-relevant
// options, and the digests of the stage's upstream artifacts. Two runs
// that would compute the same value therefore derive the same digest, and
// the Store can hand back the finished artifact without re-executing the
// stage (HAL-style pass-level caching: analysis passes are first-class
// units with explicit inputs and outputs, so their results compose and
// memoize independently).
//
// The Store is a bounded in-memory LRU with single-flight population: when
// several analyses race to produce the same artifact, exactly one executes
// the stage body and the rest wait for (and share) its result. A producer
// that finishes without publishing — its run was canceled or timed out, so
// the value is partial — wakes the waiters and the next one takes over,
// which is what makes degraded runs resumable: completed stages publish,
// interrupted stages do not, and a later run with the same inputs reuses
// exactly the published set.
//
// Artifacts are shared by reference: a cached value may be handed to many
// concurrent readers, so stage results must be treated as immutable once
// published. (The one portfolio stage that edits modules in place — the
// register bit-order pass — copies them first for exactly this reason.)
package artifact

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"sync"
)

// Digest content-addresses one artifact: a lowercase-hex SHA-256 over the
// producing stage's input closure, computed with a Hasher.
type Digest string

// Artifact is one finished stage result.
type Artifact struct {
	// Stage names the pipeline stage that produced the value.
	Stage string
	// Digest is the content address of the stage's input closure; empty
	// when the artifact was produced outside a store (memoization off).
	Digest Digest
	// Value is the stage's typed output. It must be treated as immutable:
	// the same value may be shared by every run that hits this digest.
	Value any
	// Items is the produced-item count recorded in the stage trace
	// (modules for detector stages, words for the word stage, ...), kept
	// with the value so a cache hit reports the same trace numbers as the
	// run that populated it.
	Items int
}

// Hasher accumulates the components of a Digest in a canonical,
// length-prefixed encoding (no separator ambiguity between fields).
type Hasher struct {
	hash    hash.Hash
	scratch [8]byte
}

// NewHasher starts a digest computation under a domain-separation label
// (e.g. "netlistre-stage-v1"); bump the label to invalidate every digest
// when the artifact encoding changes.
func NewHasher(domain string) *Hasher {
	hh := &Hasher{hash: sha256.New()}
	hh.Str(domain)
	return hh
}

func (h *Hasher) writeLen(n int) {
	binary.LittleEndian.PutUint64(h.scratch[:], uint64(n))
	h.hash.Write(h.scratch[:])
}

// Str appends a length-prefixed string.
func (h *Hasher) Str(s string) {
	h.writeLen(len(s))
	h.hash.Write([]byte(s))
}

// Int appends a signed integer.
func (h *Hasher) Int(v int64) { h.Uint64(uint64(v)) }

// Uint64 appends an unsigned integer (fixed width, so no length prefix).
func (h *Hasher) Uint64(v uint64) {
	binary.LittleEndian.PutUint64(h.scratch[:], v)
	h.hash.Write(h.scratch[:])
}

// Bool appends a boolean.
func (h *Hasher) Bool(b bool) {
	if b {
		h.Uint64(1)
	} else {
		h.Uint64(0)
	}
}

// Digest appends another artifact's digest (an upstream dependency).
func (h *Hasher) Digest(d Digest) { h.Str(string(d)) }

// Sum finalizes the digest.
func (h *Hasher) Sum() Digest {
	return Digest(hex.EncodeToString(h.hash.Sum(nil)))
}

// Stats is a point-in-time snapshot of the store counters.
type Stats struct {
	// Hits counts Do calls served from the store or from another caller's
	// in-flight computation.
	Hits int64
	// Misses counts Do calls that executed their compute function.
	Misses int64
	// Evictions counts artifacts dropped by the LRU bound.
	Evictions int64
	// Entries is the current artifact count.
	Entries int
}

// DefaultMaxEntries bounds a store created with a non-positive limit.
const DefaultMaxEntries = 1024

// Store is a bounded, single-flight, content-addressed artifact cache,
// safe for concurrent use by any number of analyses.
type Store struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	entries map[Digest]*list.Element
	flights map[Digest]*flight

	hits, misses, evictions int64
}

type storeEntry struct {
	key Digest
	art *Artifact
}

// flight is one in-progress computation; waiters block on done.
type flight struct {
	done chan struct{}
	art  *Artifact
	ok   bool // whether the producer published
}

// NewStore returns a store bounded to max artifacts (<= 0 selects
// DefaultMaxEntries).
func NewStore(max int) *Store {
	if max <= 0 {
		max = DefaultMaxEntries
	}
	return &Store{
		max:     max,
		ll:      list.New(),
		entries: make(map[Digest]*list.Element),
		flights: make(map[Digest]*flight),
	}
}

// Get returns the artifact stored under key, if any, marking it most
// recently used. It does not join or start a flight.
func (s *Store) Get(key Digest) (*Artifact, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*storeEntry).art, true
}

// put stores art under key (caller holds mu).
func (s *Store) put(key Digest, art *Artifact) {
	if _, exists := s.entries[key]; exists {
		return // same key, same content: nothing to update
	}
	s.entries[key] = s.ll.PushFront(&storeEntry{key: key, art: art})
	for s.ll.Len() > s.max {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.entries, oldest.Value.(*storeEntry).key)
		s.evictions++
	}
}

// Do returns the artifact for key, computing it at most once across
// concurrent callers. On a hit (stored, or produced by a concurrent
// caller) it returns (artifact, true, nil). Otherwise compute runs in the
// calling goroutine; its boolean result says whether the artifact is
// complete and may be published — a producer interrupted by a timeout or
// cancellation returns false, its partial artifact is handed back to the
// caller only, and one of the waiters takes over the computation.
//
// While waiting on another caller's flight, Do honors ctx: if it expires
// first, Do returns ctx.Err() without a value. A panic inside compute
// releases the flight (waiters retry) and propagates to the caller.
func (s *Store) Do(ctx context.Context, key Digest, compute func() (*Artifact, bool)) (*Artifact, bool, error) {
	for {
		s.mu.Lock()
		if el, ok := s.entries[key]; ok {
			s.hits++
			s.ll.MoveToFront(el)
			art := el.Value.(*storeEntry).art
			s.mu.Unlock()
			return art, true, nil
		}
		if f, ok := s.flights[key]; ok {
			s.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if f.ok {
				s.mu.Lock()
				s.hits++
				s.mu.Unlock()
				return f.art, true, nil
			}
			continue // producer declined to publish; retry (maybe lead)
		}
		f := &flight{done: make(chan struct{})}
		s.flights[key] = f
		s.misses++
		s.mu.Unlock()

		var (
			art       *Artifact
			published bool
		)
		func() {
			// The deferred cleanup also runs when compute panics: the
			// flight is released unpublished so waiters retry, then the
			// panic propagates to the caller (the scheduler converts it
			// to a failed stage).
			defer func() {
				s.mu.Lock()
				delete(s.flights, key)
				if published {
					s.put(key, art)
				}
				s.mu.Unlock()
				f.art, f.ok = art, published
				close(f.done)
			}()
			art, published = compute()
		}()
		return art, false, nil
	}
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:      s.hits,
		Misses:    s.misses,
		Evictions: s.evictions,
		Entries:   s.ll.Len(),
	}
}
