package mutate

import (
	"reflect"
	"testing"

	"netlistre/internal/core"
	"netlistre/internal/gen"
	"netlistre/internal/netlist"
	"netlistre/internal/oracle"
)

func analyze(nl *netlist.Netlist) *core.Report {
	opt := core.Options{}
	opt.Overlap.Sliceable = true
	return core.Analyze(nl, opt)
}

// checkMutant verifies a mutant's declared invariants against its
// reference: fingerprint relation and scorecard equality.
func checkMutant(t *testing.T, name string, parent *netlist.Netlist, parentLab *gen.Labels, mut *Mutant) {
	t.Helper()
	refNL, refLab := mut.RefNetlist, mut.RefLabels
	if refNL == nil {
		refNL, refLab = parent, parentLab
	}
	mutFP, refFP := mut.Netlist.Fingerprint(), refNL.Fingerprint()
	if mut.SameFingerprint && mutFP != refFP {
		t.Errorf("%s: fingerprint changed (%s != %s)", name, mutFP[:12], refFP[:12])
	}
	if mut.ChangedFingerprint && mutFP == refFP {
		t.Errorf("%s: fingerprint did not change", name)
	}
	if err := mut.Netlist.Validate(); err != nil {
		t.Fatalf("%s: mutant netlist invalid: %v", name, err)
	}

	mutRes := oracle.Score(analyze(mut.Netlist), mut.Labels, oracle.Options{})
	refRes := oracle.Score(analyze(refNL), refLab, oracle.Options{})
	if mut.ExactScores {
		if !reflect.DeepEqual(mutRes, refRes) {
			t.Errorf("%s: scorecard diverged:\nmutant: %+v\nref:    %+v", name, mutRes, refRes)
		}
		return
	}
	got := []*oracle.Result{mutRes}
	ref := []*oracle.Result{refRes}
	for _, reg := range oracle.CompareBaseline(got, ref, mut.ScoreEps) {
		t.Errorf("%s: mutant below reference: %s", name, reg)
	}
	for _, reg := range oracle.CompareBaseline(ref, got, mut.ScoreEps) {
		t.Errorf("%s: mutant above reference: %s", name, reg)
	}
}

// TestMutationsOnArticles runs every mutation over a plain and a trojaned
// article and checks the declared invariants end to end. revcheck extends
// the same checks to the full article set.
func TestMutationsOnArticles(t *testing.T) {
	if testing.Short() {
		t.Skip("analysis-heavy")
	}
	for _, article := range []string{"evoter", "oc8051-trojan"} {
		nl, lab, err := gen.LabeledArticle(article)
		if err != nil {
			t.Fatal(err)
		}
		for _, mutation := range All() {
			t.Run(article+"/"+mutation.Name, func(t *testing.T) {
				mut, err := mutation.Apply(nl, lab, 11)
				if err != nil {
					t.Fatal(err)
				}
				checkMutant(t, article+"/"+mutation.Name, nl, lab, mut)
			})
		}
	}
}

// TestReorderPermutes: the rebuild must actually move nodes around, keep
// the node count, and keep the fingerprint.
func TestReorderPermutes(t *testing.T) {
	nl, lab, err := gen.LabeledArticle("evoter")
	if err != nil {
		t.Fatal(err)
	}
	mut, err := applyReorder(nl, lab, 7)
	if err != nil {
		t.Fatal(err)
	}
	if mut.Netlist.Len() != nl.Len() {
		t.Fatalf("node count %d -> %d", nl.Len(), mut.Netlist.Len())
	}
	if mut.Netlist.Fingerprint() != nl.Fingerprint() {
		t.Error("reorder changed the fingerprint")
	}
	moved := 0
	for i := 0; i < nl.Len(); i++ {
		if nl.Node(netlist.ID(i)).Kind != mut.Netlist.Node(netlist.ID(i)).Kind {
			moved++
		}
	}
	if moved == 0 {
		t.Error("reorder left every node in place")
	}
	// Labels stay aligned: remapped members must have gate/latch kinds.
	for _, c := range mut.Labels.Components {
		for _, id := range c.Members {
			switch mut.Netlist.Node(id).Kind {
			case netlist.Input, netlist.Const0, netlist.Const1:
				t.Fatalf("component %s member %d is not a gate", c.Class, id)
			}
		}
	}
}

func TestNamedLookup(t *testing.T) {
	if _, err := Named("reorder"); err != nil {
		t.Fatal(err)
	}
	if _, err := Named("nope"); err == nil {
		t.Fatal("Named accepted unknown mutation")
	}
	seen := map[string]bool{}
	for _, m := range All() {
		if seen[m.Name] {
			t.Fatalf("duplicate mutation name %s", m.Name)
		}
		seen[m.Name] = true
	}
}
