// Package mutate derives metamorphic mutants from labeled articles. Each
// mutation transforms a netlist in a way the analysis pipeline should be
// indifferent to — renumbering nodes, renaming nets, serializing through
// Verilog or BLIF and back, De-Morgan-rewriting the irregular control
// logic, or inserting electrical noise that structural simplification
// must cancel — and states the invariant a conformant pipeline upholds:
// an unchanged fingerprint, a changed fingerprint with unchanged scores,
// or scorecard equality against a reference build. revcheck runs every
// article through every mutation and fails when an invariant breaks, which
// catches exactly the class of bug golden-file tests cannot: an analysis
// that silently depends on node order, net names, or serialization
// round-trips.
package mutate

import (
	"bytes"
	"fmt"
	"math/rand"

	"netlistre/internal/gen"
	"netlistre/internal/netlist"
	"netlistre/internal/simplify"
)

// Mutant is one transformed article plus the invariant it must satisfy.
type Mutant struct {
	// Netlist and Labels are the mutant article and its remapped ground
	// truth.
	Netlist *netlist.Netlist
	Labels  *gen.Labels
	// RefNetlist/RefLabels are what the mutant is compared against. Nil
	// means the parent article itself; the noise pipeline compares against
	// the simplified parent instead, because simplification also folds
	// pre-existing duplicate structure the raw parent still had.
	RefNetlist *netlist.Netlist
	RefLabels  *gen.Labels
	// SameFingerprint requires Netlist.Fingerprint() to equal the
	// reference's: the mutation promises not to change functional content
	// or names.
	SameFingerprint bool
	// ChangedFingerprint requires the fingerprint to differ from the
	// reference's: the mutation deliberately alters names or structure,
	// and an unchanged hash would mean the fingerprint is under-reading
	// the netlist.
	ChangedFingerprint bool
	// ExactScores requires the mutant's scorecard to deeply equal the
	// reference's. When false, only the quality ratios (per-class
	// P/R/F1, word recall, trojan scores, macro F1) must match within
	// ScoreEps: the mutation legitimately changes how many raw modules
	// the portfolio carves out, without being allowed to change how well
	// they score.
	ExactScores bool
	// ScoreEps is the tolerance for the quality-ratio comparison when
	// ExactScores is false. Zero means the ratios must match exactly.
	ScoreEps float64
}

// Mutation names one metamorphic transformation.
type Mutation struct {
	Name string
	// Description is one line for the revcheck scorecard.
	Description string
	Apply       func(nl *netlist.Netlist, lab *gen.Labels, seed int64) (*Mutant, error)
}

// All lists the mutations revcheck runs, in a fixed order.
func All() []Mutation {
	return []Mutation{
		{
			Name:        "reorder",
			Description: "rebuild with shuffled gate creation order; fingerprint and scores must hold",
			Apply:       applyReorder,
		},
		{
			Name:        "rename",
			Description: "give every internal node a fresh name; fingerprint must change, scores must not",
			Apply:       applyRename,
		},
		{
			Name:        "roundtrip",
			Description: "serialize through Verilog and through BLIF; both reads must agree exactly",
			Apply:       applyRoundTrip,
		},
		{
			Name:        "nandify",
			Description: "De Morgan rewrite of the irregular control logic; quality scores must hold",
			Apply:       applyNandify,
		},
		{
			Name:        "lutify",
			Description: "LUT-map every gate; fingerprint must change, quality scores must hold",
			Apply:       applyLutify,
		},
		{
			Name:        "noise-simplify",
			Description: "insert electrical noise, then simplify; must match the simplified parent",
			Apply:       applyNoiseSimplify,
		},
	}
}

// Named returns the mutation with the given name.
func Named(name string) (Mutation, error) {
	for _, m := range All() {
		if m.Name == name {
			return m, nil
		}
	}
	return Mutation{}, fmt.Errorf("mutate: unknown mutation %q", name)
}

// applyReorder rebuilds the netlist emitting gates in a seed-shuffled
// topological order. Inputs, constants and latches keep their relative
// order; every combinational gate is placed as soon as its fanins exist,
// choosing randomly among the ready ones. Names and structure are
// untouched, so the fingerprint must not move.
func applyReorder(nl *netlist.Netlist, lab *gen.Labels, seed int64) (*Mutant, error) {
	rng := rand.New(rand.NewSource(seed))
	out := netlist.New(nl.Name)
	m := make(map[netlist.ID]netlist.ID, nl.Len())

	deps := make([]int, nl.Len())
	dependents := make([][]netlist.ID, nl.Len())
	var gatesReady []netlist.ID
	var latches []netlist.ID

	release := func(id netlist.ID) {
		for _, d := range dependents[id] {
			deps[d]--
			if deps[d] == 0 {
				gatesReady = append(gatesReady, d)
			}
		}
	}

	// Pass 1: sources in original order. Latches get a placeholder D
	// (rewired below); the placeholder must be an existing node so the
	// rebuild adds no extra constants.
	placeholder := netlist.Nil
	for i := 0; i < nl.Len(); i++ {
		id := netlist.ID(i)
		node := nl.Node(id)
		switch node.Kind {
		case netlist.Input:
			m[id] = out.AddInput(node.Name)
		case netlist.Const0, netlist.Const1:
			m[id] = out.AddConst(node.Kind == netlist.Const1)
		case netlist.Latch:
			latches = append(latches, id)
			continue
		default:
			deps[id] = len(node.Fanin)
			for _, f := range node.Fanin {
				dependents[f] = append(dependents[f], id)
			}
			continue
		}
		if placeholder == netlist.Nil {
			placeholder = m[id]
		}
	}
	if placeholder == netlist.Nil && len(latches) > 0 {
		return nil, fmt.Errorf("mutate: reorder needs an input or constant for latch rewiring")
	}
	for _, id := range latches {
		l := out.AddLatch(placeholder)
		if name := nl.Node(id).Name; name != "" {
			out.SetName(l, name)
		}
		m[id] = l
	}
	// Releasing the sources readies every gate fed only by them; a gate
	// always has at least one fanin, so no gate starts ready on its own.
	for i := 0; i < nl.Len(); i++ {
		id := netlist.ID(i)
		switch nl.Node(id).Kind {
		case netlist.Input, netlist.Const0, netlist.Const1, netlist.Latch:
			release(id)
		}
	}

	// Pass 2: gates in random ready order.
	for len(gatesReady) > 0 {
		k := rng.Intn(len(gatesReady))
		id := gatesReady[k]
		gatesReady[k] = gatesReady[len(gatesReady)-1]
		gatesReady = gatesReady[:len(gatesReady)-1]
		node := nl.Node(id)
		fan := make([]netlist.ID, len(node.Fanin))
		for i, f := range node.Fanin {
			fan[i] = m[f]
		}
		g := out.AddGateLike(node, fan...)
		if node.Name != "" {
			out.SetName(g, node.Name)
		}
		m[id] = g
		release(id)
	}
	for _, id := range latches {
		out.SetLatchD(m[id], m[nl.Fanin(id)[0]])
	}
	for _, p := range nl.Outputs() {
		out.MarkOutput(p.Name, m[p.Driver])
	}
	if out.Len() != nl.Len() {
		return nil, fmt.Errorf("mutate: reorder dropped nodes (%d -> %d): combinational cycle?",
			nl.Len(), out.Len())
	}
	// The raw module inventory is allowed to move: the seed portfolio's
	// candidate enumeration visits nodes in ID order under caps, so
	// renumbering shifts which redundant composite candidates (word-ops
	// over the same gates) get emitted. Quality ratios must hold exactly.
	return &Mutant{
		Netlist:         out,
		Labels:          remapOne(lab, m),
		SameFingerprint: true,
	}, nil
}

// applyRename gives every gate and latch a fresh synthetic name. The
// fingerprint is name-sensitive by design (a report is only reusable for
// a netlist with matching names), so it must change; the analysis itself
// is structural, so the scorecard must not.
func applyRename(nl *netlist.Netlist, lab *gen.Labels, seed int64) (*Mutant, error) {
	out := nl.Clone()
	for i := 0; i < out.Len(); i++ {
		id := netlist.ID(i)
		switch out.Node(id).Kind {
		case netlist.Input, netlist.Const0, netlist.Const1:
			// Input names are the article's port interface; keep them.
		default:
			out.SetName(id, fmt.Sprintf("mut%d_%d", seed, id))
		}
	}
	ident := make(map[netlist.ID]netlist.ID, nl.Len())
	for i := 0; i < nl.Len(); i++ {
		ident[netlist.ID(i)] = netlist.ID(i)
	}
	return &Mutant{
		Netlist:            out,
		Labels:             remapOne(lab, ident),
		ChangedFingerprint: true,
		ExactScores:        true,
	}, nil
}

// applyRoundTrip serializes the article to Verilog and to BLIF and reads
// both back. The two parses resolve nets in different orders and lower
// covers differently, yet must agree on everything: identical
// fingerprints and identical scorecards. (Neither is compared against the
// raw parent: serialization materializes output aliases as buffers, which
// is a faithful, but not byte-identical, rendering.)
func applyRoundTrip(nl *netlist.Netlist, lab *gen.Labels, _ int64) (*Mutant, error) {
	var vbuf, bbuf bytes.Buffer
	if err := nl.WriteVerilog(&vbuf); err != nil {
		return nil, fmt.Errorf("mutate: writing verilog: %w", err)
	}
	if err := nl.WriteBLIF(&bbuf); err != nil {
		return nil, fmt.Errorf("mutate: writing blif: %w", err)
	}
	fromV, err := netlist.ReadVerilog(&vbuf)
	if err != nil {
		return nil, fmt.Errorf("mutate: re-reading verilog: %w", err)
	}
	fromB, err := netlist.ReadBLIF(&bbuf)
	if err != nil {
		return nil, fmt.Errorf("mutate: re-reading blif: %w", err)
	}
	vlab, err := remapByName(lab, nl, fromV)
	if err != nil {
		return nil, fmt.Errorf("mutate: verilog round-trip: %w", err)
	}
	blab, err := remapByName(lab, nl, fromB)
	if err != nil {
		return nil, fmt.Errorf("mutate: blif round-trip: %w", err)
	}
	return &Mutant{
		Netlist:         fromV,
		Labels:          vlab,
		RefNetlist:      fromB,
		RefLabels:       blab,
		SameFingerprint: true,
		ExactScores:     true,
	}, nil
}

// applyNandify rewrites every And and Or gate of the labeled control-noise
// region through De Morgan: And(f...) becomes Not(Nand(f...)), Or(f...)
// becomes Nand(Not(f)...). Components are untouched, so every quality
// ratio must hold; the raw module counts inside the rewritten region may
// legitimately move.
func applyNandify(nl *netlist.Netlist, lab *gen.Labels, _ int64) (*Mutant, error) {
	noise := make(map[netlist.ID]bool, len(lab.Noise))
	for _, id := range lab.Noise {
		noise[id] = true
	}
	if len(noise) == 0 {
		return nil, fmt.Errorf("mutate: nandify needs labeled control noise")
	}
	out := netlist.New(nl.Name)
	// images[id] lists every new node standing for id, value carrier last.
	images := make(map[netlist.ID][]netlist.ID, nl.Len())
	valueOf := func(id netlist.ID) netlist.ID {
		img := images[id]
		return img[len(img)-1]
	}
	var latches []netlist.ID
	placeholder := netlist.Nil
	for _, id := range nl.TopoOrder() {
		node := nl.Node(id)
		switch node.Kind {
		case netlist.Input:
			images[id] = []netlist.ID{out.AddInput(node.Name)}
		case netlist.Const0, netlist.Const1:
			images[id] = []netlist.ID{out.AddConst(node.Kind == netlist.Const1)}
		case netlist.Latch:
			if placeholder == netlist.Nil {
				placeholder = out.AddConst(false)
			}
			l := out.AddLatch(placeholder)
			if node.Name != "" {
				out.SetName(l, node.Name)
			}
			images[id] = []netlist.ID{l}
			latches = append(latches, id)
		default:
			fan := make([]netlist.ID, len(node.Fanin))
			for i, f := range node.Fanin {
				fan[i] = valueOf(f)
			}
			switch {
			case noise[id] && node.Kind == netlist.And:
				x := out.AddGate(netlist.Nand, fan...)
				v := out.AddGate(netlist.Not, x)
				if node.Name != "" {
					out.SetName(v, node.Name)
				}
				images[id] = []netlist.ID{x, v}
			case noise[id] && node.Kind == netlist.Or:
				inv := make([]netlist.ID, len(fan))
				img := make([]netlist.ID, 0, len(fan)+1)
				for i, f := range fan {
					inv[i] = out.AddGate(netlist.Not, f)
					img = append(img, inv[i])
				}
				v := out.AddGate(netlist.Nand, inv...)
				if node.Name != "" {
					out.SetName(v, node.Name)
				}
				images[id] = append(img, v)
			default:
				g := out.AddGateLike(node, fan...)
				if node.Name != "" {
					out.SetName(g, node.Name)
				}
				images[id] = []netlist.ID{g}
			}
		}
	}
	for _, id := range latches {
		out.SetLatchD(valueOf(id), valueOf(nl.Fanin(id)[0]))
	}
	for _, p := range nl.Outputs() {
		out.MarkOutput(p.Name, valueOf(p.Driver))
	}
	// Suspect-set node fractions shift a little when borderline modules
	// straddling noise and trojan logic change size, so the trojan F1 gets
	// a small tolerance; everything else must hold within it too.
	return &Mutant{
		Netlist:            out,
		Labels:             lab.Remap(func(id netlist.ID) []netlist.ID { return images[id] }),
		ChangedFingerprint: true,
		ScoreEps:           0.02,
	}, nil
}

// applyLutify runs the article through gen.LutMapped: every combinational
// gate except Buf becomes a truth-table cell, erasing the structural gate
// alphabet while preserving the function bit-for-bit. The analysis is
// functional, so per-class quality ratios must hold (within a small
// tolerance: cut enumeration over opaque k-input cells can legitimately
// shift which redundant composite candidates clear the caps). On an
// already LUT-mapped article the transform is the identity, so the
// fingerprint and scorecard must not move at all.
func applyLutify(nl *netlist.Netlist, lab *gen.Labels, _ int64) (*Mutant, error) {
	convertible := false
	for i := 0; i < nl.Len(); i++ {
		k := nl.Kind(netlist.ID(i))
		if k.IsGate() && k != netlist.Buf && k != netlist.Lut {
			convertible = true
			break
		}
	}
	mapped, img := gen.LutMapped(nl)
	mapped.Name = nl.Name // compare structure, not the _lut rename
	mut := &Mutant{
		Netlist: mapped,
		Labels:  lab.Remap(func(id netlist.ID) []netlist.ID { return img[id] }),
	}
	if convertible {
		mut.ChangedFingerprint = true
		mut.ScoreEps = 0.05
	} else {
		mut.SameFingerprint = true
		mut.ExactScores = true
	}
	return mut, nil
}

// applyNoiseSimplify inserts electrical noise cells (buffers, delay
// chains, paired inverters) and runs structural simplification. The
// reference is the simplified parent, not the raw parent: simplification
// also merges duplicate structure the original articles genuinely contain,
// and the invariant is that noise leaves no trace beyond that.
func applyNoiseSimplify(nl *netlist.Netlist, lab *gen.Labels, seed int64) (*Mutant, error) {
	noisy, toNoisy := gen.AddElectricalNoiseMapped(nl, seed, 0.15)
	mres := simplify.Run(noisy)
	rres := simplify.Run(nl)
	compose := func(id netlist.ID) []netlist.ID {
		ni, ok := toNoisy[id]
		if !ok {
			return nil
		}
		si, ok := mres.NodeMap[ni]
		if !ok {
			return nil
		}
		return []netlist.ID{si}
	}
	refMap := func(id netlist.ID) []netlist.ID {
		si, ok := rres.NodeMap[id]
		if !ok {
			return nil
		}
		return []netlist.ID{si}
	}
	return &Mutant{
		Netlist:         mres.Netlist,
		Labels:          lab.Remap(compose),
		RefNetlist:      rres.Netlist,
		RefLabels:       lab.Remap(refMap),
		SameFingerprint: true,
		ExactScores:     true,
	}, nil
}

// remapOne remaps labels through a one-to-one node map.
func remapOne(lab *gen.Labels, m map[netlist.ID]netlist.ID) *gen.Labels {
	return lab.Remap(func(id netlist.ID) []netlist.ID {
		nid, ok := m[id]
		if !ok {
			return nil
		}
		return []netlist.ID{nid}
	})
}

// remapByName remaps labels from src to dst by net name: serialization
// names every unnamed node n<id>, so NameOf on the source side matches the
// parsed node names on the destination side.
func remapByName(lab *gen.Labels, src, dst *netlist.Netlist) (*gen.Labels, error) {
	var missing error
	out := lab.Remap(func(id netlist.ID) []netlist.ID {
		nid := dst.FindByName(src.NameOf(id))
		if nid == netlist.Nil {
			if missing == nil {
				missing = fmt.Errorf("mutate: node %s lost in round-trip", src.NameOf(id))
			}
			return nil
		}
		return []netlist.ID{nid}
	})
	return out, missing
}
