package oracle

// Baseline persistence and comparison: revcheck records the seed scorecard
// as JSON, and CI fails any run whose scores regress below it. The gate is
// no-regression, not perfection — the recorded baseline honestly includes
// the seed portfolio's known misses (the riscfpu duplicate parity trees,
// the xor-preprocessed AddSub operand word).

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WriteResults writes results as deterministic, indented JSON sorted by
// design name.
func WriteResults(w io.Writer, results []*Result) error {
	sorted := append([]*Result(nil), results...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Design < sorted[j].Design })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sorted)
}

// ReadResults reads a scorecard written by WriteResults.
func ReadResults(r io.Reader) ([]*Result, error) {
	var results []*Result
	if err := json.NewDecoder(r).Decode(&results); err != nil {
		return nil, fmt.Errorf("oracle: reading scorecard: %w", err)
	}
	return results, nil
}

// CompareBaseline lists every way got regresses below base: a design
// missing from got, a per-class F1, word recall, trojan F1 or macro F1
// more than eps below the baseline value. Improvements and new designs
// pass silently; an empty slice means the gate holds.
func CompareBaseline(got, base []*Result, eps float64) []string {
	byDesign := make(map[string]*Result, len(got))
	for _, r := range got {
		byDesign[r.Design] = r
	}
	var regressions []string
	for _, b := range base {
		g, ok := byDesign[b.Design]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: missing from results", b.Design))
			continue
		}
		gotClass := make(map[string]ClassScore, len(g.Classes))
		for _, c := range g.Classes {
			gotClass[c.Class] = c
		}
		for _, bc := range b.Classes {
			gc, ok := gotClass[bc.Class]
			if !ok {
				// A class that disappears entirely is only a regression if
				// the baseline had truth components to find.
				if bc.Truth > 0 {
					regressions = append(regressions,
						fmt.Sprintf("%s/%s: class missing from results", b.Design, bc.Class))
				}
				continue
			}
			if gc.F1 < bc.F1-eps {
				regressions = append(regressions,
					fmt.Sprintf("%s/%s: F1 %.4f < baseline %.4f", b.Design, bc.Class, gc.F1, bc.F1))
			}
		}
		if g.Words.Recall < b.Words.Recall-eps {
			regressions = append(regressions,
				fmt.Sprintf("%s/words: recall %.4f < baseline %.4f", b.Design, g.Words.Recall, b.Words.Recall))
		}
		if b.Trojan != nil {
			if g.Trojan == nil {
				regressions = append(regressions, fmt.Sprintf("%s/trojan: score missing", b.Design))
			} else if g.Trojan.F1 < b.Trojan.F1-eps {
				regressions = append(regressions,
					fmt.Sprintf("%s/trojan: F1 %.4f < baseline %.4f", b.Design, g.Trojan.F1, b.Trojan.F1))
			}
		}
		if g.MacroF1 < b.MacroF1-eps {
			regressions = append(regressions,
				fmt.Sprintf("%s/macro: F1 %.4f < baseline %.4f", b.Design, g.MacroF1, b.MacroF1))
		}
	}
	return regressions
}
