package oracle

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"netlistre/internal/core"
	"netlistre/internal/gen"
	"netlistre/internal/module"
	"netlistre/internal/netlist"
	"netlistre/internal/words"
)

func ids(vals ...int) []netlist.ID {
	out := make([]netlist.ID, len(vals))
	for i, v := range vals {
		out[i] = netlist.ID(v)
	}
	return out
}

func mod(t module.Type, width int, elements []netlist.ID) *module.Module {
	return module.New(t, width, elements)
}

// classLine finds the scorecard line for one class.
func classLine(t *testing.T, res *Result, class string) ClassScore {
	t.Helper()
	for _, c := range res.Classes {
		if c.Class == class {
			return c
		}
	}
	t.Fatalf("no class %q in result %+v", class, res.Classes)
	return ClassScore{}
}

// TestScoreSynthetic exercises the matching rules on a hand-built report:
// recovery through namesake and composite types, the many-to-one tandem
// match, grounding through class unions, noise and trojan regions, and the
// false-positive path for a module mixing unrelated classes.
func TestScoreSynthetic(t *testing.T) {
	lab := &gen.Labels{
		Design: "synthetic",
		Components: []gen.Component{
			// Recovered by the namesake adder module below.
			{Class: gen.ClassAdder, Width: 4, Members: ids(10, 11, 12, 13),
				Words: map[string][]netlist.ID{"sum": ids(10, 11, 12, 13)}},
			// Recovered by a composite word-op module.
			{Class: gen.ClassSubtractor, Width: 4, Members: ids(20, 21, 22, 23)},
			// Two tandem shift registers recovered by ONE merged module.
			{Class: gen.ClassShiftRegister, Width: 2, Members: ids(30, 31)},
			{Class: gen.ClassShiftRegister, Width: 2, Members: ids(32, 33)},
			// Missed: no module overlaps it.
			{Class: gen.ClassCounter, Width: 4, Members: ids(40, 41, 42, 43),
				Words: map[string][]netlist.ID{"q": ids(40, 41, 42, 43)}},
			// Narrow word: below MinWordWidth, never scored.
			{Class: gen.ClassMux, Width: 2, Members: ids(50, 51),
				Words: map[string][]netlist.ID{"out": ids(50, 51)}},
		},
		Noise:  ids(60, 61, 62, 63),
		Trojan: ids(70, 71, 72, 73),
	}
	rep := &core.Report{
		All: []*module.Module{
			mod(module.Adder, 4, ids(10, 11, 12, 13)),           // grounded, recovers adder
			mod(module.WordOp, 4, ids(20, 21, 22, 23)),          // composite: recall only
			mod(module.ShiftRegister, 4, ids(30, 31, 32, 33)),   // merged tandem pair
			mod(module.ParityTree, 3, ids(60, 61, 62)),          // grounded in noise
			mod(module.Decoder, 2, ids(70, 71, 72, 73)),         // grounded in trojan
			mod(module.Counter, 4, ids(10, 11, 60, 61, 70, 71)), // mixed: ungrounded
			mod(module.Mux, 2, ids(50, 51)),                     // grounded, recovers mux
		},
		Words: []words.Word{
			{Bits: ids(10, 11, 12, 13), Origin: "adder"},
		},
	}

	res := Score(rep, lab, Options{})

	adder := classLine(t, res, "adder")
	if adder.Recovered != 1 || adder.Found != 1 || adder.Grounded != 1 || adder.F1 != 1 {
		t.Errorf("adder line = %+v, want fully recovered and grounded", adder)
	}
	sub := classLine(t, res, "subtractor")
	if sub.Recovered != 1 || sub.Found != 0 {
		t.Errorf("subtractor line = %+v, want recovered via word-op with no namesake found", sub)
	}
	if sub.Precision != 1 || sub.Recall != 1 {
		t.Errorf("subtractor P/R = %v/%v, want vacuous precision 1 and recall 1", sub.Precision, sub.Recall)
	}
	sr := classLine(t, res, "shift-register")
	if sr.Recovered != 2 {
		t.Errorf("shift-register recovered = %d, want 2 (one merged module recovers both)", sr.Recovered)
	}
	if sr.Grounded != 1 {
		t.Errorf("shift-register grounded = %d, want 1 (class-union grounding)", sr.Grounded)
	}
	ctr := classLine(t, res, "counter")
	if ctr.Recovered != 0 || ctr.Grounded != 0 || ctr.F1 != 0 {
		t.Errorf("counter line = %+v, want missed truth and ungrounded mixed module", ctr)
	}
	pt := classLine(t, res, "parity-tree")
	if pt.Truth != 0 || pt.Grounded != 1 || pt.Precision != 1 || pt.Recall != 1 {
		t.Errorf("parity-tree line = %+v, want noise-grounded finding with vacuous recall", pt)
	}
	dec := classLine(t, res, "decoder")
	if dec.Grounded != 1 {
		t.Errorf("decoder line = %+v, want trojan-grounded finding", dec)
	}

	// Words: sum found, counter q missed, 2-bit mux word skipped.
	if res.Words.Truth != 2 || res.Words.Recovered != 1 || res.Words.Recall != 0.5 {
		t.Errorf("words = %+v, want truth=2 recovered=1", res.Words)
	}

	// Trojan: the decoder module is all-trojan; the mixed counter module is
	// only 2/6 trojan and stays out of the suspect set.
	if res.Trojan == nil {
		t.Fatal("trojan score missing")
	}
	if res.Trojan.SuspectNodes != 4 || res.Trojan.Overlap != 4 ||
		res.Trojan.Precision != 1 || res.Trojan.Recall != 1 {
		t.Errorf("trojan = %+v, want exact suspect set", res.Trojan)
	}
}

// TestScoreDeterministic: identical inputs produce deeply equal results.
func TestScoreDeterministic(t *testing.T) {
	nl, lab, err := gen.LabeledArticle("evoter")
	if err != nil {
		t.Fatal(err)
	}
	opt := core.Options{}
	opt.Overlap.Sliceable = true
	rep := core.Analyze(nl, opt)
	a := Score(rep, lab, Options{})
	b := Score(rep, lab, Options{})
	if !reflect.DeepEqual(a, b) {
		t.Errorf("Score not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestScoreEvoterEndToEnd pins the seed portfolio's scores on the smallest
// article: every class perfect, every word recovered.
func TestScoreEvoterEndToEnd(t *testing.T) {
	nl, lab, err := gen.LabeledArticle("evoter")
	if err != nil {
		t.Fatal(err)
	}
	opt := core.Options{}
	opt.Overlap.Sliceable = true
	rep := core.Analyze(nl, opt)
	res := Score(rep, lab, Options{})
	if res.MacroF1 != 1 {
		t.Errorf("evoter macro F1 = %v, want 1", res.MacroF1)
	}
	for _, c := range res.Classes {
		if c.F1 != 1 {
			t.Errorf("evoter class %s F1 = %v, want 1 (%+v)", c.Class, c.F1, c)
		}
	}
	if res.Words.Recall != 1 {
		t.Errorf("evoter word recall = %v, want 1 (%+v)", res.Words.Recall, res.Words)
	}
	if res.Trojan != nil {
		t.Errorf("evoter has no trojan labels, got %+v", res.Trojan)
	}
}

func TestMinWordWidthOption(t *testing.T) {
	lab := &gen.Labels{
		Design: "w",
		Components: []gen.Component{
			{Class: gen.ClassMux, Width: 2, Members: ids(1, 2),
				Words: map[string][]netlist.ID{"out": ids(1, 2)}},
		},
	}
	rep := &core.Report{Words: []words.Word{{Bits: ids(1, 2)}}}
	if got := Score(rep, lab, Options{}).Words; got.Truth != 0 {
		t.Errorf("default floor: words = %+v, want 2-bit word skipped", got)
	}
	if got := Score(rep, lab, Options{MinWordWidth: 2}).Words; got.Truth != 1 || got.Recovered != 1 {
		t.Errorf("floor 2: words = %+v, want 2-bit word scored", got)
	}
}

func TestResultsRoundTripAndCompare(t *testing.T) {
	a := &Result{Design: "a", MacroF1: 0.9,
		Classes: []ClassScore{{Class: "adder", Truth: 1, Recovered: 1, Found: 1, Grounded: 1,
			Precision: 1, Recall: 1, F1: 1}},
		Words:  WordScore{Truth: 2, Recovered: 2, Recall: 1},
		Trojan: &TrojanScore{TruthNodes: 3, SuspectNodes: 3, Overlap: 3, Precision: 1, Recall: 1, F1: 1}}
	b := &Result{Design: "b", MacroF1: 1,
		Classes: []ClassScore{{Class: "mux", Truth: 2, Recovered: 2, F1: 1}},
		Words:   WordScore{Recall: 1}}

	var buf bytes.Buffer
	if err := WriteResults(&buf, []*Result{b, a}); err != nil {
		t.Fatal(err)
	}
	// Deterministic order: sorted by design regardless of input order.
	if i, j := strings.Index(buf.String(), `"a"`), strings.Index(buf.String(), `"b"`); i < 0 || j < 0 || i > j {
		t.Errorf("WriteResults order: %s", buf.String())
	}
	back, err := ReadResults(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || !reflect.DeepEqual(back[0], a) || !reflect.DeepEqual(back[1], b) {
		t.Errorf("round trip mismatch: %+v", back)
	}

	if regs := CompareBaseline([]*Result{a, b}, []*Result{a, b}, 1e-9); len(regs) != 0 {
		t.Errorf("self-compare regressions: %v", regs)
	}

	// Degrade a in every dimension and check each is reported.
	worse := *a
	worse.Classes = []ClassScore{{Class: "adder", Truth: 1, F1: 0.5}}
	worse.Words = WordScore{Truth: 2, Recovered: 1, Recall: 0.5}
	worse.Trojan = &TrojanScore{F1: 0.5}
	worse.MacroF1 = 0.5
	regs := CompareBaseline([]*Result{&worse, b}, []*Result{a, b}, 1e-9)
	for _, want := range []string{"a/adder", "a/words", "a/trojan", "a/macro"} {
		found := false
		for _, r := range regs {
			if strings.HasPrefix(r, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("regression %q not reported in %v", want, regs)
		}
	}

	// A missing design and a missing truth-bearing class are regressions.
	regs = CompareBaseline([]*Result{a}, []*Result{a, b}, 1e-9)
	if len(regs) != 1 || !strings.HasPrefix(regs[0], "b:") {
		t.Errorf("missing design: %v", regs)
	}
	noMux := &Result{Design: "b", MacroF1: 1, Words: WordScore{Recall: 1}}
	regs = CompareBaseline([]*Result{a, noMux}, []*Result{a, b}, 1e-9)
	if len(regs) != 1 || !strings.Contains(regs[0], "b/mux") {
		t.Errorf("missing class: %v", regs)
	}

	if _, err := ReadResults(strings.NewReader("not json")); err == nil {
		t.Error("ReadResults accepted garbage")
	}
}
