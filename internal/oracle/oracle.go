// Package oracle scores an analysis report against the ground-truth labels
// recorded by the generators in internal/gen, reproducing the paper's
// Section V methodology: the evaluation question is not "how many modules
// did the portfolio emit" but "did it find the components the designer
// actually instantiated, and is what it emitted real".
//
// Scoring runs against the pre-resolution module set (Report.All): overlap
// resolution deliberately discards correct modules that compete for the
// same gates (the muxes and registers inside a RAM, say), so judging
// accuracy on Report.Resolved would punish the resolver for doing its job.
//
// Three metric families come out:
//
//   - Per-class precision/recall/F1. A labeled component is *recovered*
//     when an inferred module of a compatible type covers at least
//     MinRecall of its member nodes. An inferred module is *grounded* when
//     at least MinGrounding of its elements fall inside one labeled region
//     or inside the union of same-kind components — the module points at
//     real structure even if it names it differently (an adder inside an
//     ALU reported as a word-op, a RAM cell reported as a
//     multibit-register) or merges tandem structures into one.
//   - Word recovery: the fraction of labeled multi-bit port words (sum,
//     q, read, ...) that appear in Report.Words, as a set-containment
//     match.
//   - Trojan suspect set (Section V-D): modules mostly made of
//     trojan-span nodes form the suspect set; precision/recall of that
//     set against the labeled trojan nodes.
package oracle

import (
	"fmt"
	"math"
	"sort"

	"netlistre/internal/core"
	"netlistre/internal/gen"
	"netlistre/internal/module"
	"netlistre/internal/netlist"
)

// Options tunes the matching thresholds. The zero value selects the
// defaults, which are calibrated so the seed portfolio scores cleanly on
// every article (see testdata/conformance_baseline.json at the repo root).
type Options struct {
	// MinRecall is the fraction of a component's members a single module
	// must cover for the component to count as recovered. Default 0.5.
	MinRecall float64
	// MinGrounding is the fraction of a module's elements that must lie
	// inside a single labeled region (or the union of same-kind
	// components) for the module to count as a true positive. Default 0.5.
	MinGrounding float64
	// MinTrojanOverlap is the fraction of a module's elements that must be
	// trojan-span nodes for the module to join the suspect set. Default
	// 0.5.
	MinTrojanOverlap float64
	// MinWordWidth is the narrowest labeled port word scored for word
	// recovery. Default 4: the word-propagation stage seeds from module
	// ports, and words narrower than a nibble (FSM state vectors, tiny
	// counters) are below what it reliably recovers on the seed articles.
	MinWordWidth int
}

func (o Options) withDefaults() Options {
	if o.MinRecall == 0 {
		o.MinRecall = 0.5
	}
	if o.MinGrounding == 0 {
		o.MinGrounding = 0.5
	}
	if o.MinTrojanOverlap == 0 {
		o.MinTrojanOverlap = 0.5
	}
	if o.MinWordWidth == 0 {
		o.MinWordWidth = 4
	}
	return o
}

// allowedTypes maps a ground-truth class to the module types that count as
// recovering it. Beyond the class's namesake type, the portfolio
// legitimately reports composite structures under broader types: an
// add/sub unit matched via the component library is a word-op, a mux
// absorbed into a gating or fused module is still found.
var allowedTypes = map[gen.Class][]module.Type{
	gen.ClassAdder:         {module.Adder, module.WordOp, module.Fused},
	gen.ClassSubtractor:    {module.Subtractor, module.WordOp, module.Fused},
	gen.ClassMux:           {module.Mux, module.Demux, module.WordOp, module.Fused, module.Gating},
	gen.ClassDecoder:       {module.Decoder, module.Demux},
	gen.ClassParityTree:    {module.ParityTree},
	gen.ClassPopCount:      {module.PopCount},
	gen.ClassCounter:       {module.Counter},
	gen.ClassShiftRegister: {module.ShiftRegister},
	gen.ClassRAM:           {module.RAM},
	gen.ClassRegister:      {module.MultibitRegister, module.Gating},
}

// primaryClass maps a module type to the class whose precision it is
// charged against. Types with no entry (word-op, gating, fused, demux,
// unknown, candidate) are composite or auxiliary: they are counted for
// recall via allowedTypes but not penalized as class false positives.
var primaryClass = map[module.Type]gen.Class{
	module.Adder:            gen.ClassAdder,
	module.Subtractor:       gen.ClassSubtractor,
	module.Mux:              gen.ClassMux,
	module.Decoder:          gen.ClassDecoder,
	module.ParityTree:       gen.ClassParityTree,
	module.PopCount:         gen.ClassPopCount,
	module.Counter:          gen.ClassCounter,
	module.ShiftRegister:    gen.ClassShiftRegister,
	module.RAM:              gen.ClassRAM,
	module.MultibitRegister: gen.ClassRegister,
}

// ClassScore is the scorecard line for one component class.
type ClassScore struct {
	Class string `json:"class"`
	// Truth counts labeled components; Recovered those matched by an
	// inferred module of an allowed type covering >= MinRecall of them.
	Truth     int `json:"truth"`
	Recovered int `json:"recovered"`
	// Found counts inferred modules whose primary class this is; Grounded
	// those lying (>= MinGrounding) inside labeled structure.
	Found     int     `json:"found"`
	Grounded  int     `json:"grounded"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
}

// WordScore reports labeled-word recovery.
type WordScore struct {
	Truth     int     `json:"truth"`
	Recovered int     `json:"recovered"`
	Recall    float64 `json:"recall"`
}

// TrojanScore reports suspect-set accuracy on trojaned designs.
type TrojanScore struct {
	TruthNodes   int     `json:"truth_nodes"`
	SuspectNodes int     `json:"suspect_nodes"`
	Overlap      int     `json:"overlap"`
	Precision    float64 `json:"precision"`
	Recall       float64 `json:"recall"`
	F1           float64 `json:"f1"`
}

// Result is the deterministic scorecard for one design.
type Result struct {
	Design  string       `json:"design"`
	Classes []ClassScore `json:"classes"`
	Words   WordScore    `json:"words"`
	// Trojan is nil for designs without trojan labels.
	Trojan *TrojanScore `json:"trojan,omitempty"`
	// MacroF1 averages F1 over classes with Truth > 0.
	MacroF1 float64 `json:"macro_f1"`
}

// Score matches rep against lab. It is deterministic for a fixed
// (report, labels, options) triple; the report itself is deterministic for
// any worker count, so scores are too.
func Score(rep *core.Report, lab *gen.Labels, opt Options) *Result {
	opt = opt.withDefaults()
	res := &Result{Design: lab.Design}

	mods := rep.All
	memberSets := make([]map[netlist.ID]bool, len(lab.Components))
	for i := range lab.Components {
		memberSets[i] = idSet(lab.Components[i].Members)
	}

	compMatched := recoveredComponents(mods, lab, memberSets, opt)
	grounded := groundedModules(mods, lab, memberSets, opt)

	// Assemble per-class lines over every class seen in truth or findings.
	byClass := make(map[gen.Class]*ClassScore)
	classOf := func(c gen.Class) *ClassScore {
		s, ok := byClass[c]
		if !ok {
			s = &ClassScore{Class: string(c)}
			byClass[c] = s
		}
		return s
	}
	for ci := range lab.Components {
		c := &lab.Components[ci]
		s := classOf(c.Class)
		s.Truth++
		if compMatched[ci] {
			s.Recovered++
		}
	}
	for mi, m := range mods {
		cls, scored := primaryClass[m.Type]
		if !scored {
			continue
		}
		s := classOf(cls)
		s.Found++
		if grounded[mi] {
			s.Grounded++
		}
	}
	var names []string
	for c := range byClass {
		names = append(names, string(c))
	}
	sort.Strings(names)
	var f1sum float64
	var f1n int
	for _, name := range names {
		s := byClass[gen.Class(name)]
		s.Precision = ratioOr1(s.Grounded, s.Found)
		s.Recall = ratioOr1(s.Recovered, s.Truth)
		s.F1 = f1(s.Precision, s.Recall)
		if s.Truth > 0 {
			f1sum += s.F1
			f1n++
		}
		res.Classes = append(res.Classes, *s)
	}
	if f1n > 0 {
		res.MacroF1 = round(f1sum / float64(f1n))
	}
	for i := range res.Classes {
		s := &res.Classes[i]
		s.Precision, s.Recall, s.F1 = round(s.Precision), round(s.Recall), round(s.F1)
	}

	res.Words = scoreWords(rep, lab, opt)
	res.Trojan = scoreTrojan(rep, lab, opt)
	return res
}

// recoveredComponents marks each labeled component that some inferred
// module of an allowed type covers at >= MinRecall. Matching is
// many-to-one on purpose: the portfolio merges tandem structures (seven
// chained shift registers become one shift-register[7x8] module), and that
// single module genuinely localizes every one of the seven — the paper
// counts such merges as found, not as six misses.
func recoveredComponents(mods []*module.Module, lab *gen.Labels,
	memberSets []map[netlist.ID]bool, opt Options) []bool {
	matched := make([]bool, len(lab.Components))
	for ci := range lab.Components {
		c := &lab.Components[ci]
		if len(c.Members) == 0 {
			continue
		}
		allowed := make(map[module.Type]bool)
		for _, t := range allowedTypes[c.Class] {
			allowed[t] = true
		}
		for _, m := range mods {
			if !allowed[m.Type] {
				continue
			}
			ov := overlapCount(m.Elements, memberSets[ci])
			if float64(ov)/float64(len(c.Members)) >= opt.MinRecall {
				matched[ci] = true
				break
			}
		}
	}
	return matched
}

// groundedModules marks each primary-typed module that points at real
// labeled structure: >= MinGrounding of its elements inside one labeled
// region. The regions are the per-class unions of component members (a
// module carved out of one kind of designed structure is real whether it
// sits inside one component or spans tandem ones — the merged
// shift-register[7x8], the load muxes shared by seven shift registers),
// the control-noise block (a parity function carved out of random control
// logic is a correct find), and the trojan logic (the paper's Table 8
// trojans manifest precisely as extra decoders and comparators). A module
// mixing unrelated classes grounds in none of them and counts as a false
// positive.
func groundedModules(mods []*module.Module, lab *gen.Labels,
	memberSets []map[netlist.ID]bool, opt Options) []bool {
	classUnion := make(map[gen.Class]map[netlist.ID]bool)
	for ci := range lab.Components {
		cls := lab.Components[ci].Class
		u, ok := classUnion[cls]
		if !ok {
			u = make(map[netlist.ID]bool)
			classUnion[cls] = u
		}
		for id := range memberSets[ci] {
			u[id] = true
		}
	}
	var regions []map[netlist.ID]bool
	for _, cls := range classOrder {
		if u, ok := classUnion[cls]; ok {
			regions = append(regions, u)
		}
	}
	if len(lab.Noise) > 0 {
		regions = append(regions, idSet(lab.Noise))
	}
	if len(lab.Trojan) > 0 {
		regions = append(regions, idSet(lab.Trojan))
	}
	grounded := make([]bool, len(mods))
	for mi, m := range mods {
		if _, scored := primaryClass[m.Type]; !scored || len(m.Elements) == 0 {
			continue
		}
		need := opt.MinGrounding * float64(len(m.Elements))
		for _, region := range regions {
			if float64(overlapCount(m.Elements, region)) >= need {
				grounded[mi] = true
				break
			}
		}
	}
	return grounded
}

// classOrder fixes the iteration order over classUnion for determinism.
var classOrder = []gen.Class{gen.ClassAdder, gen.ClassSubtractor,
	gen.ClassMux, gen.ClassDecoder, gen.ClassParityTree, gen.ClassPopCount,
	gen.ClassCounter, gen.ClassShiftRegister, gen.ClassRAM, gen.ClassRegister}

// scoreWords checks every labeled port word of at least MinWordWidth bits
// for set containment in some reported word.
func scoreWords(rep *core.Report, lab *gen.Labels, opt Options) WordScore {
	found := make([]map[netlist.ID]bool, len(rep.Words))
	for i, w := range rep.Words {
		found[i] = idSet(w.Bits)
	}
	seen := map[string]bool{}
	var ws WordScore
	for _, c := range lab.Components {
		for _, w := range c.Words {
			if len(w) < opt.MinWordWidth {
				continue
			}
			key := wordKey(w)
			if seen[key] {
				continue
			}
			seen[key] = true
			ws.Truth++
			for _, fs := range found {
				if containsAll(fs, w) {
					ws.Recovered++
					break
				}
			}
		}
	}
	ws.Recall = round(ratioOr1(ws.Recovered, ws.Truth))
	return ws
}

// TrojanSuspects computes the suspect set over a labeled article: the
// sorted union of elements of every inferred module that is mostly trojan
// logic (overlap fraction >= MinTrojanOverlap). It is the same set
// scoreTrojan grades, exported so downstream consumers — e.g. the RTL
// decompiler mapping suspects to emitted line spans — share one
// definition. The zero Options selects the calibrated defaults.
func TrojanSuspects(rep *core.Report, lab *gen.Labels, opt Options) []netlist.ID {
	opt = opt.withDefaults()
	if len(lab.Trojan) == 0 {
		return nil
	}
	truth := idSet(lab.Trojan)
	suspect := map[netlist.ID]bool{}
	for _, m := range rep.All {
		if len(m.Elements) == 0 {
			continue
		}
		ov := overlapCount(m.Elements, truth)
		if float64(ov)/float64(len(m.Elements)) >= opt.MinTrojanOverlap {
			for _, e := range m.Elements {
				suspect[e] = true
			}
		}
	}
	out := make([]netlist.ID, 0, len(suspect))
	for id := range suspect {
		out = append(out, id)
	}
	return netlist.SortedIDs(out)
}

// scoreTrojan grades the suspect set against the labeled trojan nodes.
func scoreTrojan(rep *core.Report, lab *gen.Labels, opt Options) *TrojanScore {
	if len(lab.Trojan) == 0 {
		return nil
	}
	truth := idSet(lab.Trojan)
	suspects := TrojanSuspects(rep, lab, opt)
	ts := &TrojanScore{TruthNodes: len(truth), SuspectNodes: len(suspects)}
	for _, id := range suspects {
		if truth[id] {
			ts.Overlap++
		}
	}
	ts.Precision = ratioOr1(ts.Overlap, ts.SuspectNodes)
	ts.Recall = ratioOr1(ts.Overlap, ts.TruthNodes)
	ts.F1 = round(f1(ts.Precision, ts.Recall))
	ts.Precision, ts.Recall = round(ts.Precision), round(ts.Recall)
	return ts
}

func idSet(ids []netlist.ID) map[netlist.ID]bool {
	s := make(map[netlist.ID]bool, len(ids))
	for _, id := range ids {
		s[id] = true
	}
	return s
}

func overlapCount(elems []netlist.ID, set map[netlist.ID]bool) int {
	n := 0
	for _, e := range elems {
		if set[e] {
			n++
		}
	}
	return n
}

func containsAll(set map[netlist.ID]bool, w []netlist.ID) bool {
	for _, b := range w {
		if !set[b] {
			return false
		}
	}
	return true
}

func wordKey(w []netlist.ID) string {
	s := append([]netlist.ID(nil), w...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return fmt.Sprint(s)
}

// ratioOr1 returns num/den, or 1 for the vacuous den == 0 case (no truth
// to miss, no findings to be wrong about).
func ratioOr1(num, den int) float64 {
	if den == 0 {
		return 1
	}
	return float64(num) / float64(den)
}

func f1(p, r float64) float64 {
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// round keeps scores stable in JSON output: four decimal places is well
// below any meaningful score difference and avoids float formatting noise.
func round(x float64) float64 {
	return math.Round(x*1e4) / 1e4
}
