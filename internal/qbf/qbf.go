// Package qbf implements a CEGAR-based 2QBF decision procedure for the
// module-matching question of Section II-D: given a candidate module C with
// word inputs X and side inputs Y, and a reference module C', is there an
// assignment to Y such that for every X the two modules agree?
//
// This is exactly the ∃Y∀X fragment the paper solves with DepQBF. The CEGAR
// loop alternates between a synthesis solver that proposes Y assignments
// consistent with all counterexamples seen so far, and a verification
// solver that searches for an X on which the proposal fails. Both
// directions are plain SAT queries over Tseitin encodings of the two cones.
package qbf

import (
	"context"

	"netlistre/internal/netlist"
	"netlistre/internal/sat"
)

// Result reports the outcome of a 2QBF solve.
type Result struct {
	// Found is true when an assignment to the existential signals was
	// proven correct for all universal assignments.
	Found bool
	// Assignment maps each existential signal to its synthesized value
	// (meaningful only when Found).
	Assignment map[netlist.ID]bool
	// Iterations is the number of CEGAR refinements performed.
	Iterations int
	// Aborted is true when MaxIterations was exhausted, a SAT conflict
	// budget ran out, or the context was canceled before a decision.
	Aborted bool
}

// interruptOf adapts a context to the SAT solver's polling hook. A
// context that can never be canceled maps to nil so the solver's hot
// loop pays nothing.
func interruptOf(ctx context.Context) func() bool {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return func() bool { return ctx.Err() != nil }
}

// conflictBudget bounds each SAT query inside the CEGAR loop; exhausting it
// aborts the solve (Result.Aborted) rather than stalling on a hard miter.
const conflictBudget = 500_000

// DefaultMaxIterations bounds the CEGAR loop; module-matching instances
// converge in a handful of refinements, so hitting this means the modules
// genuinely differ in a way that produces exponentially many Y candidates.
const DefaultMaxIterations = 256

// SolveForallEqualWord decides ∃Y ∀X . ∀i outs[i] == refs[i]: a single Y
// assignment must make every bit pair agree, which is the word-level miter
// of Figure 3. It reduces to SolveForallEqual by disjoining the per-bit
// mismatches inside both the verification and synthesis solvers; the
// implementation below shares one CEGAR loop. Canceling ctx aborts the
// loop cooperatively (Result.Aborted).
func SolveForallEqualWord(ctx context.Context, nl *netlist.Netlist, outs, refs []netlist.ID, forall, exists []netlist.ID, maxIter int) Result {
	if len(outs) != len(refs) || len(outs) == 0 {
		return Result{}
	}
	if maxIter <= 0 {
		maxIter = DefaultMaxIterations
	}
	interrupt := interruptOf(ctx)

	vs := sat.New()
	vs.MaxConflicts = conflictBudget
	vs.Interrupt = interrupt
	venc := sat.NewEncoder(vs, nl)
	// anyMiss <-> OR_i (out_i XOR ref_i).
	var missLits []sat.Lit
	for i := range outs {
		o, r := venc.LitOf(outs[i]), venc.LitOf(refs[i])
		x := sat.MkLit(vs.NewVar(), false)
		vs.AddClause(x.Neg(), o, r)
		vs.AddClause(x.Neg(), o.Neg(), r.Neg())
		vs.AddClause(x, o.Neg(), r)
		vs.AddClause(x, o, r.Neg())
		missLits = append(missLits, x)
	}
	anyMiss := sat.MkLit(vs.NewVar(), false)
	long := []sat.Lit{anyMiss.Neg()}
	for _, x := range missLits {
		vs.AddClause(anyMiss, x.Neg())
		long = append(long, x)
	}
	vs.AddClause(long...)

	ss := sat.New()
	ss.MaxConflicts = conflictBudget
	ss.Interrupt = interrupt
	yVar := make(map[netlist.ID]int, len(exists))
	for _, y := range exists {
		yVar[y] = ss.NewVar()
	}
	isForall := make(map[netlist.ID]bool, len(forall))
	for _, x := range forall {
		isForall[x] = true
	}
	cand := make(map[netlist.ID]bool, len(exists))
	for _, y := range exists {
		cand[y] = false
	}

	for iter := 0; iter < maxIter; iter++ {
		if interrupt != nil && interrupt() {
			return Result{Iterations: iter, Aborted: true}
		}
		assumptions := make([]sat.Lit, 0, len(exists)+1)
		for _, y := range exists {
			assumptions = append(assumptions, sat.MkLit(venc.LitOf(y).Var(), !cand[y]))
		}
		assumptions = append(assumptions, anyMiss)
		switch vs.Solve(assumptions...) {
		case sat.Unsat:
			return Result{Found: true, Assignment: cand, Iterations: iter}
		case sat.Unknown:
			return Result{Iterations: iter, Aborted: true}
		}
		cex := make(map[netlist.ID]bool, len(forall))
		for _, x := range forall {
			if v, ok := venc.VarOf(x); ok {
				cex[x] = vs.Value(v)
			}
		}
		for i := range outs {
			so := encodeFixed(ss, nl, outs[i], cex, isForall, yVar)
			sr := encodeFixed(ss, nl, refs[i], cex, isForall, yVar)
			ss.AddClause(so.Neg(), sr)
			ss.AddClause(so, sr.Neg())
		}
		switch ss.Solve() {
		case sat.Unsat:
			return Result{Iterations: iter + 1}
		case sat.Unknown:
			return Result{Iterations: iter + 1, Aborted: true}
		}
		for _, y := range exists {
			cand[y] = ss.Value(yVar[y])
		}
	}
	return Result{Iterations: maxIter, Aborted: true}
}

// SolveForallEqual decides ∃Y ∀X . out(X∪Y) == ref(X∪Y) over the netlist.
// forall lists the universally quantified boundary signals (X, the word
// inputs), exists the existentially quantified ones (Y, the side inputs).
// Every boundary signal of both cones must appear in one of the two lists.
// maxIter <= 0 selects DefaultMaxIterations. Canceling ctx aborts the
// CEGAR loop cooperatively (Result.Aborted).
func SolveForallEqual(ctx context.Context, nl *netlist.Netlist, out, ref netlist.ID, forall, exists []netlist.ID, maxIter int) Result {
	if maxIter <= 0 {
		maxIter = DefaultMaxIterations
	}
	interrupt := interruptOf(ctx)

	// Verification solver: shared encoding of both cones; each round fixes
	// Y via assumptions and asks for X with out != ref.
	vs := sat.New()
	vs.MaxConflicts = conflictBudget
	vs.Interrupt = interrupt
	venc := sat.NewEncoder(vs, nl)
	vOut, vRef := venc.LitOf(out), venc.LitOf(ref)
	miter := sat.MkLit(vs.NewVar(), false)
	// miter <-> out XOR ref.
	vs.AddClause(miter.Neg(), vOut, vRef)
	vs.AddClause(miter.Neg(), vOut.Neg(), vRef.Neg())
	vs.AddClause(miter, vOut.Neg(), vRef)
	vs.AddClause(miter, vOut, vRef.Neg())

	// Synthesis solver: one shared variable per existential signal; each
	// counterexample contributes a fresh cone encoding with X fixed.
	ss := sat.New()
	ss.MaxConflicts = conflictBudget
	ss.Interrupt = interrupt
	yVar := make(map[netlist.ID]int, len(exists))
	for _, y := range exists {
		yVar[y] = ss.NewVar()
	}
	isForall := make(map[netlist.ID]bool, len(forall))
	for _, x := range forall {
		isForall[x] = true
	}

	cand := make(map[netlist.ID]bool, len(exists)) // all-false initial guess
	for _, y := range exists {
		cand[y] = false
	}

	for iter := 0; iter < maxIter; iter++ {
		if interrupt != nil && interrupt() {
			return Result{Iterations: iter, Aborted: true}
		}
		// Verify: any X with out != ref under cand?
		assumptions := make([]sat.Lit, 0, len(exists)+1)
		for _, y := range exists {
			assumptions = append(assumptions, sat.MkLit(venc.LitOf(y).Var(), !cand[y]))
		}
		assumptions = append(assumptions, miter)
		switch vs.Solve(assumptions...) {
		case sat.Unsat:
			return Result{Found: true, Assignment: cand, Iterations: iter}
		case sat.Unknown:
			return Result{Iterations: iter, Aborted: true}
		}

		// Extract counterexample X*.
		cex := make(map[netlist.ID]bool, len(forall))
		for _, x := range forall {
			if v, ok := venc.VarOf(x); ok {
				cex[x] = vs.Value(v)
			} else {
				cex[x] = false // signal outside both cones: value irrelevant
			}
		}

		// Refine: synthesized Y must make out == ref on X*.
		so := encodeFixed(ss, nl, out, cex, isForall, yVar)
		sr := encodeFixed(ss, nl, ref, cex, isForall, yVar)
		ss.AddClause(so.Neg(), sr)
		ss.AddClause(so, sr.Neg())

		switch ss.Solve() {
		case sat.Unsat:
			return Result{Iterations: iter + 1}
		case sat.Unknown:
			return Result{Iterations: iter + 1, Aborted: true}
		}
		for _, y := range exists {
			cand[y] = ss.Value(yVar[y])
		}
	}
	return Result{Iterations: maxIter, Aborted: true}
}

// encodeFixed Tseitin-encodes the cone of root into s with the universal
// boundary signals fixed to the values in cex and the existential signals
// mapped to shared solver variables. Each call creates fresh internal
// variables, so successive counterexamples do not interfere.
func encodeFixed(s *sat.Solver, nl *netlist.Netlist, root netlist.ID,
	cex map[netlist.ID]bool, isForall map[netlist.ID]bool, yVar map[netlist.ID]int) sat.Lit {

	lits := make(map[netlist.ID]sat.Lit)
	var constT sat.Lit
	haveConst := false
	constLit := func(v bool) sat.Lit {
		if !haveConst {
			constT = sat.MkLit(s.NewVar(), false)
			s.AddClause(constT)
			haveConst = true
		}
		if v {
			return constT
		}
		return constT.Neg()
	}

	type frame struct {
		id       netlist.ID
		expanded bool
	}
	stack := []frame{{root, false}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		if _, done := lits[f.id]; done {
			stack = stack[:len(stack)-1]
			continue
		}
		node := nl.Node(f.id)
		if node.Kind.IsConeInput() {
			if isForall[f.id] {
				lits[f.id] = constLit(cex[f.id])
			} else if v, ok := yVar[f.id]; ok {
				lits[f.id] = sat.MkLit(v, false)
			} else {
				// A boundary signal in neither list: treat as fresh free
				// variable local to this refinement (conservative).
				lits[f.id] = sat.MkLit(s.NewVar(), false)
			}
			stack = stack[:len(stack)-1]
			continue
		}
		switch node.Kind {
		case netlist.Const0:
			lits[f.id] = constLit(false)
			stack = stack[:len(stack)-1]
			continue
		case netlist.Const1:
			lits[f.id] = constLit(true)
			stack = stack[:len(stack)-1]
			continue
		}
		if !f.expanded {
			stack[len(stack)-1].expanded = true
			for _, fi := range node.Fanin {
				if _, done := lits[fi]; !done {
					stack = append(stack, frame{fi, false})
				}
			}
			continue
		}
		stack = stack[:len(stack)-1]
		lits[f.id] = encodeGateLits(s, node, lits)
	}
	return lits[root]
}

func encodeGateLits(s *sat.Solver, node *netlist.Node, lits map[netlist.ID]sat.Lit) sat.Lit {
	ins := make([]sat.Lit, len(node.Fanin))
	for i, f := range node.Fanin {
		ins[i] = lits[f]
	}
	switch node.Kind {
	case netlist.Buf:
		return ins[0]
	case netlist.Not:
		return ins[0].Neg()
	}
	out := sat.MkLit(s.NewVar(), false)
	o := out
	switch node.Kind {
	case netlist.Nand, netlist.Nor, netlist.Xnor:
		o = out.Neg()
	}
	switch node.Kind {
	case netlist.And, netlist.Nand:
		long := make([]sat.Lit, 0, len(ins)+1)
		for _, in := range ins {
			s.AddClause(o.Neg(), in)
			long = append(long, in.Neg())
		}
		s.AddClause(append(long, o)...)
	case netlist.Or, netlist.Nor:
		long := make([]sat.Lit, 0, len(ins)+1)
		for _, in := range ins {
			s.AddClause(o, in.Neg())
			long = append(long, in)
		}
		s.AddClause(append(long, o.Neg())...)
	case netlist.Xor, netlist.Xnor:
		acc := ins[0]
		for i := 1; i < len(ins)-1; i++ {
			aux := sat.MkLit(s.NewVar(), false)
			addXorClauses(s, aux, acc, ins[i])
			acc = aux
		}
		addXorClauses(s, o, acc, ins[len(ins)-1])
	case netlist.Lut:
		// One clause per truth-table row: inputs matching row r force the
		// output to the mask bit (2^k clauses, k <= 6).
		rows := uint(1) << uint(len(ins))
		for r := uint(0); r < rows; r++ {
			clause := make([]sat.Lit, 0, len(ins)+1)
			for j, in := range ins {
				if r>>uint(j)&1 == 1 {
					clause = append(clause, in.Neg())
				} else {
					clause = append(clause, in)
				}
			}
			if node.Mask>>r&1 == 1 {
				clause = append(clause, o)
			} else {
				clause = append(clause, o.Neg())
			}
			s.AddClause(clause...)
		}
	default:
		panic("qbf: cannot encode " + node.Kind.String())
	}
	return out
}

func addXorClauses(s *sat.Solver, o, a, b sat.Lit) {
	s.AddClause(o.Neg(), a, b)
	s.AddClause(o.Neg(), a.Neg(), b.Neg())
	s.AddClause(o, a.Neg(), b)
	s.AddClause(o, a, b.Neg())
}
