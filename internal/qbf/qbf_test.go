package qbf

import (
	"context"
	"testing"

	"netlistre/internal/netlist"
)

// buildAddSub returns a netlist with a 4-bit add/sub unit (out = a + b when
// mode=0, a - b when mode=1) and a reference 4-bit adder over the same a/b
// inputs. It returns the MSB-side outputs bit by bit for equivalence tests.
func buildAddSub() (nl *netlist.Netlist, outs, refs []netlist.ID, a, b []netlist.ID, mode netlist.ID) {
	nl = netlist.New("addsub")
	const w = 4
	for i := 0; i < w; i++ {
		a = append(a, nl.AddInput("a"+string(rune('0'+i))))
	}
	for i := 0; i < w; i++ {
		b = append(b, nl.AddInput("b"+string(rune('0'+i))))
	}
	mode = nl.AddInput("mode")

	// Candidate: b XOR mode into a ripple adder with carry-in = mode
	// (classic add/sub).
	carry := mode
	for i := 0; i < w; i++ {
		bx := nl.AddGate(netlist.Xor, b[i], mode)
		sum := nl.AddGate(netlist.Xor, a[i], bx, carry)
		outs = append(outs, sum)
		c1 := nl.AddGate(netlist.And, a[i], bx)
		c2 := nl.AddGate(netlist.And, carry, nl.AddGate(netlist.Xor, a[i], bx))
		carry = nl.AddGate(netlist.Or, c1, c2)
	}

	// Reference: plain ripple adder with carry-in 0.
	rc := netlist.ID(nl.AddConst(false))
	for i := 0; i < w; i++ {
		sum := nl.AddGate(netlist.Xor, a[i], b[i], rc)
		refs = append(refs, sum)
		c1 := nl.AddGate(netlist.And, a[i], b[i])
		c2 := nl.AddGate(netlist.And, rc, nl.AddGate(netlist.Xor, a[i], b[i]))
		rc = nl.AddGate(netlist.Or, c1, c2)
	}
	return nl, outs, refs, a, b, mode
}

func TestAddSubMatchesAdderWithModeZero(t *testing.T) {
	nl, outs, refs, a, b, mode := buildAddSub()
	forall := append(append([]netlist.ID{}, a...), b...)
	// Check the full word: every bit pair must agree under one shared Y.
	// Solve per-bit and verify the assignments agree on mode=0.
	for i := range outs {
		res := SolveForallEqual(context.Background(), nl, outs[i], refs[i], forall, []netlist.ID{mode}, 0)
		if !res.Found {
			t.Fatalf("bit %d: no side-input assignment found (iter=%d aborted=%v)",
				i, res.Iterations, res.Aborted)
		}
		if res.Assignment[mode] {
			t.Errorf("bit %d: synthesized mode=1, want 0 (add mode)", i)
		}
	}
}

func TestAddSubDoesNotMatchXorWord(t *testing.T) {
	nl, outs, _, a, b, mode := buildAddSub()
	// Reference: bitwise xor (differs from add/sub on carries for bit>=1).
	x1 := nl.AddGate(netlist.Xor, a[1], b[1])
	forall := append(append([]netlist.ID{}, a...), b...)
	res := SolveForallEqual(context.Background(), nl, outs[1], x1, forall, []netlist.ID{mode}, 0)
	if res.Found {
		t.Errorf("bit 1 of add/sub claimed equal to xor under mode=%v", res.Assignment[mode])
	}
	if res.Aborted {
		t.Error("solver aborted instead of refuting")
	}
}

func TestMuxSideInputSelection(t *testing.T) {
	// Candidate: out = s ? (a&b) : (a|b). Reference: a&b. Expect s=1.
	nl := netlist.New("t")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	s := nl.AddInput("s")
	and := nl.AddGate(netlist.And, a, b)
	or := nl.AddGate(netlist.Or, a, b)
	ns := nl.AddGate(netlist.Not, s)
	out := nl.AddGate(netlist.Or,
		nl.AddGate(netlist.And, s, and),
		nl.AddGate(netlist.And, ns, or))
	ref := nl.AddGate(netlist.And, a, b)

	res := SolveForallEqual(context.Background(), nl, out, ref, []netlist.ID{a, b}, []netlist.ID{s}, 0)
	if !res.Found {
		t.Fatalf("no assignment found: %+v", res)
	}
	if !res.Assignment[s] {
		t.Error("synthesized s=0, want s=1")
	}

	// Against xor there is no valid side assignment.
	refX := nl.AddGate(netlist.Xor, a, b)
	res = SolveForallEqual(context.Background(), nl, out, refX, []netlist.ID{a, b}, []netlist.ID{s}, 0)
	if res.Found {
		t.Error("mux matched xor")
	}
}

func TestTwoSideInputs(t *testing.T) {
	// out = (y1 & a) | (y2 & ~a); matching ref=a requires y1=1, y2=0.
	nl := netlist.New("t")
	a := nl.AddInput("a")
	y1 := nl.AddInput("y1")
	y2 := nl.AddInput("y2")
	na := nl.AddGate(netlist.Not, a)
	out := nl.AddGate(netlist.Or,
		nl.AddGate(netlist.And, y1, a),
		nl.AddGate(netlist.And, y2, na))
	ref := nl.AddGate(netlist.Buf, a)
	res := SolveForallEqual(context.Background(), nl, out, ref, []netlist.ID{a}, []netlist.ID{y1, y2}, 0)
	if !res.Found {
		t.Fatalf("no assignment: %+v", res)
	}
	if !res.Assignment[y1] || res.Assignment[y2] {
		t.Errorf("assignment = %v, want y1=1 y2=0", res.Assignment)
	}
}

func TestNoExistentials(t *testing.T) {
	// Plain equivalence checking degenerates gracefully with empty Y.
	nl := netlist.New("t")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	f := nl.AddGate(netlist.Nand, a, b)
	g := nl.AddGate(netlist.Not, nl.AddGate(netlist.And, a, b))
	res := SolveForallEqual(context.Background(), nl, f, g, []netlist.ID{a, b}, nil, 0)
	if !res.Found {
		t.Error("nand and not-and should match with empty Y")
	}
	h := nl.AddGate(netlist.And, a, b)
	res = SolveForallEqual(context.Background(), nl, f, h, []netlist.ID{a, b}, nil, 0)
	if res.Found {
		t.Error("nand matched and")
	}
}
