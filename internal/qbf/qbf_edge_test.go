package qbf

import (
	"context"
	"testing"

	"netlistre/internal/gen"
	"netlistre/internal/netlist"
)

func TestMaxIterAbort(t *testing.T) {
	// With maxIter=1 on an instance needing two refinements, the solver
	// must report Aborted rather than a wrong verdict.
	nl := netlist.New("t")
	a := nl.AddInput("a")
	y1 := nl.AddInput("y1")
	y2 := nl.AddInput("y2")
	na := nl.AddGate(netlist.Not, a)
	out := nl.AddGate(netlist.Or,
		nl.AddGate(netlist.And, y1, a),
		nl.AddGate(netlist.And, y2, na))
	ref := nl.AddGate(netlist.Buf, a)
	res := SolveForallEqual(context.Background(), nl, out, ref, []netlist.ID{a}, []netlist.ID{y1, y2}, 1)
	if res.Found {
		t.Error("found with starved iteration budget?")
	}
	if !res.Aborted && res.Iterations < 1 {
		t.Errorf("expected abort or refutation after 1 iter: %+v", res)
	}
}

func TestWordSolverRefutes(t *testing.T) {
	// Word-level: a 4-bit bitwise-and unit cannot match bitwise-or for any
	// side assignment; the word CEGAR must refute (not abort).
	nl := netlist.New("w")
	a := gen.InputWord(nl, "a", 4)
	b := gen.InputWord(nl, "b", 4)
	y := nl.AddInput("y")
	var outs, refs []netlist.ID
	for i := 0; i < 4; i++ {
		// Candidate: (a&b) xor y-gated nothing — y irrelevant dead side input.
		outs = append(outs, nl.AddGate(netlist.And, a[i], b[i]))
		refs = append(refs, nl.AddGate(netlist.Or, a[i], b[i]))
	}
	forall := append(append([]netlist.ID{}, a...), b...)
	res := SolveForallEqualWord(context.Background(), nl, outs, refs, forall, []netlist.ID{y}, 0)
	if res.Found || res.Aborted {
		t.Errorf("and-word vs or-word: %+v", res)
	}
}

func TestWordSolverEmptyAndMismatched(t *testing.T) {
	nl := netlist.New("e")
	a := nl.AddInput("a")
	g := nl.AddGate(netlist.Buf, a)
	if res := SolveForallEqualWord(context.Background(), nl, nil, nil, nil, nil, 0); res.Found {
		t.Error("empty word matched")
	}
	if res := SolveForallEqualWord(context.Background(), nl, []netlist.ID{g}, nil, nil, nil, 0); res.Found {
		t.Error("mismatched word lengths matched")
	}
}

func TestWordSolverWithConstsInCone(t *testing.T) {
	// Cones containing constants exercise encodeFixed's constant handling.
	nl := netlist.New("c")
	a := gen.InputWord(nl, "a", 3)
	zero := nl.AddConst(false)
	one := nl.AddConst(true)
	var outs, refs []netlist.ID
	for i := 0; i < 3; i++ {
		outs = append(outs, nl.AddGate(netlist.Or, nl.AddGate(netlist.And, a[i], one), zero))
		refs = append(refs, nl.AddGate(netlist.Buf, a[i]))
	}
	res := SolveForallEqualWord(context.Background(), nl, outs, refs, a, nil, 0)
	if !res.Found {
		t.Errorf("constant-folded identity not proven: %+v", res)
	}
}
