package simplify

import (
	"math/rand"
	"testing"

	"netlistre/internal/gen"
	"netlistre/internal/netlist"
)

func TestRemovesBuffersAndPairedInverters(t *testing.T) {
	nl := netlist.New("b")
	a := nl.AddInput("a")
	b1 := nl.AddGate(netlist.Buf, a)
	b2 := nl.AddGate(netlist.Buf, b1)
	n1 := nl.AddGate(netlist.Not, b2)
	n2 := nl.AddGate(netlist.Not, n1)
	g := nl.AddGate(netlist.And, n2, a)
	nl.MarkOutput("y", g)

	res := Run(nl)
	// Everything collapses: y = a & a — one gate.
	if got := res.Netlist.Stats().Gates; got != 1 {
		t.Errorf("gates = %d, want 1", got)
	}
	if res.NodeMap[b2] != res.NodeMap[a] {
		t.Error("buffer chain not collapsed onto a")
	}
	if res.NodeMap[n2] != res.NodeMap[a] {
		t.Error("paired inverters not collapsed")
	}
	if res.RemovedGates != 4 {
		t.Errorf("removed = %d, want 4", res.RemovedGates)
	}
}

func TestMergesStructurallyEquivalentGates(t *testing.T) {
	nl := netlist.New("m")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	g1 := nl.AddGate(netlist.And, a, b)
	g2 := nl.AddGate(netlist.And, b, a) // same gate, permuted inputs
	g3 := nl.AddGate(netlist.Or, g1, g2)
	nl.MarkOutput("y", g3)
	res := Run(nl)
	if res.NodeMap[g1] != res.NodeMap[g2] {
		t.Error("structurally equivalent gates not merged")
	}
	// or(x, x) remains structurally (semantic folding is out of scope),
	// so 2 gates survive: the and and the or.
	if got := res.Netlist.Stats().Gates; got != 2 {
		t.Errorf("gates = %d, want 2", got)
	}
}

func TestPreservesSequentialSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		nl := netlist.New("r")
		var pool []netlist.ID
		nIn := 4
		for i := 0; i < nIn; i++ {
			pool = append(pool, nl.AddInput(string(rune('a'+i))))
		}
		var latches []netlist.ID
		for i := 0; i < 3; i++ {
			l := nl.AddLatch(pool[rng.Intn(len(pool))])
			latches = append(latches, l)
			pool = append(pool, l)
		}
		kinds := []netlist.Kind{netlist.And, netlist.Or, netlist.Nand,
			netlist.Nor, netlist.Xor, netlist.Xnor, netlist.Not, netlist.Buf}
		for i := 0; i < 30; i++ {
			k := kinds[rng.Intn(len(kinds))]
			if k == netlist.Not || k == netlist.Buf {
				pool = append(pool, nl.AddGate(k, pool[rng.Intn(len(pool))]))
			} else {
				pool = append(pool, nl.AddGate(k, pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))]))
			}
		}
		for _, l := range latches {
			nl.SetLatchD(l, pool[rng.Intn(len(pool))])
		}
		nl.MarkOutput("y", pool[len(pool)-1])

		res := Run(nl)
		if err := res.Netlist.Check(); err != nil {
			t.Fatalf("trial %d: simplified netlist invalid: %v", trial, err)
		}

		// Co-simulate for several cycles.
		inByName := func(n *netlist.Netlist) map[string]netlist.ID {
			m := make(map[string]netlist.ID)
			for _, in := range n.Inputs() {
				m[n.NameOf(in)] = in
			}
			return m
		}
		oIn, sIn := inByName(nl), inByName(res.Netlist)
		oSt, sSt := nl.NewState(), res.Netlist.NewState()
		for cycle := 0; cycle < 8; cycle++ {
			oAssign := map[netlist.ID]bool{}
			sAssign := map[netlist.ID]bool{}
			for name, oid := range oIn {
				v := rng.Intn(2) == 1
				oAssign[oid] = v
				sAssign[sIn[name]] = v
			}
			oOut := nl.OutputValues(nl.Step(oSt, oAssign))
			sOut := res.Netlist.OutputValues(res.Netlist.Step(sSt, sAssign))
			if oOut["y"] != sOut["y"] {
				t.Fatalf("trial %d cycle %d: output diverged", trial, cycle)
			}
		}
	}
}

func TestBigReductionOnBufferHeavyDesign(t *testing.T) {
	// Emulate BigSoC's electrical buffering: a real circuit wrapped in
	// buffers and paired inverters must shrink substantially (the paper
	// reports ~55%).
	nl := netlist.New("buffy")
	a := gen.InputWord(nl, "a", 8)
	b := gen.InputWord(nl, "b", 8)
	sum, _ := gen.RippleAdder(nl, a, b, netlist.Nil)
	for _, s := range sum {
		x := nl.AddGate(netlist.Buf, s)
		x = nl.AddGate(netlist.Buf, x)
		n := nl.AddGate(netlist.Not, x)
		nl.MarkOutput("y", nl.AddGate(netlist.Not, n))
	}
	before := nl.Stats().Gates
	res := Run(nl)
	after := res.Netlist.Stats().Gates
	if after >= before-20 {
		t.Errorf("reduction too small: %d -> %d", before, after)
	}
}
