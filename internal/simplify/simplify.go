// Package simplify implements the structural logic simplification used to
// scale the analysis to BigSoC (Section V-C.1): buffer and delay-chain
// elimination, paired-inverter removal, and merging of structurally
// equivalent gates (structural hashing). The paper reports a 55% reduction
// in combinational elements on BigSoC from this pass alone.
package simplify

import (
	"fmt"
	"sort"
	"strings"

	"netlistre/internal/netlist"
)

// Result pairs the simplified netlist with the old-to-new node mapping.
type Result struct {
	Netlist *netlist.Netlist
	// NodeMap maps each original node to its representative in the
	// simplified netlist.
	NodeMap map[netlist.ID]netlist.ID
	// RemovedGates counts original combinational gates that were folded
	// away.
	RemovedGates int
}

// Run simplifies nl structurally. The transformation is semantics
// preserving: every original signal maps to a simplified node computing the
// same function of the same inputs and latches.
func Run(nl *netlist.Netlist) Result {
	out := netlist.New(nl.Name)
	rep := make(map[netlist.ID]netlist.ID, nl.Len())
	hash := make(map[string]netlist.ID)

	// notOf[x] = existing Not gate over x in the output netlist.
	notOf := make(map[netlist.ID]netlist.ID)
	// srcOfNot[n] = fanin of Not gate n.
	srcOfNot := make(map[netlist.ID]netlist.ID)

	var latchPatch []netlist.ID // original latches needing D rewiring
	placeholder := netlist.Nil  // shared temporary D for latches

	for _, id := range nl.TopoOrder() {
		node := nl.Node(id)
		switch node.Kind {
		case netlist.Input:
			rep[id] = out.AddInput(nl.NameOf(id))
		case netlist.Latch:
			// D patched after all reps exist.
			if placeholder == netlist.Nil {
				placeholder = out.AddConst(false)
			}
			l := out.AddLatch(placeholder)
			if node.Name != "" {
				out.SetName(l, node.Name)
			}
			rep[id] = l
			latchPatch = append(latchPatch, id)
		case netlist.Const0, netlist.Const1:
			key := node.Kind.String()
			if r, ok := hash[key]; ok {
				rep[id] = r
			} else {
				r := out.AddConst(node.Kind == netlist.Const1)
				hash[key] = r
				rep[id] = r
			}
		case netlist.Buf:
			rep[id] = rep[node.Fanin[0]]
		case netlist.Not:
			child := rep[node.Fanin[0]]
			if src, isNot := srcOfNot[child]; isNot {
				rep[id] = src // paired inverter
				break
			}
			if n, ok := notOf[child]; ok {
				rep[id] = n // structurally shared inverter
				break
			}
			n := out.AddGate(netlist.Not, child)
			notOf[child] = n
			srcOfNot[n] = child
			rep[id] = n
		case netlist.Lut:
			// LUTs are not symmetric in their fanins, so they hash on the
			// mask plus the fanin list in argument order.
			fan := make([]netlist.ID, len(node.Fanin))
			for i, f := range node.Fanin {
				fan[i] = rep[f]
			}
			key := fmt.Sprintf("lut%x:%s", node.Mask, gateKey(node.Kind, fan))
			if r, ok := hash[key]; ok {
				rep[id] = r
				break
			}
			g := out.AddLut(node.Mask, fan...)
			hash[key] = g
			rep[id] = g
		default:
			fan := make([]netlist.ID, len(node.Fanin))
			for i, f := range node.Fanin {
				fan[i] = rep[f]
			}
			// Symmetric gates hash on the sorted fanin multiset.
			sorted := append([]netlist.ID(nil), fan...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			key := gateKey(node.Kind, sorted)
			if r, ok := hash[key]; ok {
				rep[id] = r
				break
			}
			g := out.AddGate(node.Kind, sorted...)
			hash[key] = g
			rep[id] = g
		}
	}
	for _, l := range latchPatch {
		out.SetLatchD(rep[l], rep[nl.Fanin(l)[0]])
	}
	for _, p := range nl.Outputs() {
		out.MarkOutput(p.Name, rep[p.Driver])
	}

	// Sweep dead logic: paired-inverter collapsing can orphan the inner
	// inverter (it was consumed only by the now-bypassed outer one).
	// Reachability is seeded from primary outputs and every latch.
	swept, finalMap := sweep(out)
	final := make(map[netlist.ID]netlist.ID, len(rep))
	for orig, mid := range rep {
		final[orig] = finalMap[mid] // netlist.Nil when the node died
	}
	return Result{
		Netlist:      swept,
		NodeMap:      final,
		RemovedGates: nl.Stats().Gates - swept.Stats().Gates,
	}
}

// sweep rebuilds nl keeping only nodes reachable from primary outputs and
// latches (latches are state and always kept, together with their D cones).
// It returns the swept netlist and the old-to-new map, with unreachable
// nodes mapped to netlist.Nil.
func sweep(nl *netlist.Netlist) (*netlist.Netlist, map[netlist.ID]netlist.ID) {
	reach := make(map[netlist.ID]bool, nl.Len())
	var stack []netlist.ID
	push := func(id netlist.ID) {
		if !reach[id] {
			reach[id] = true
			stack = append(stack, id)
		}
	}
	for _, l := range nl.Latches() {
		push(l)
	}
	for _, p := range nl.Outputs() {
		push(p.Driver)
	}
	for _, in := range nl.Inputs() {
		push(in) // inputs define the interface; keep them all
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range nl.Fanin(id) {
			push(f)
		}
	}

	out := netlist.New(nl.Name)
	m := make(map[netlist.ID]netlist.ID, nl.Len())
	var latchPatch []netlist.ID
	placeholder := netlist.Nil
	for _, id := range nl.TopoOrder() {
		if !reach[id] {
			m[id] = netlist.Nil
			continue
		}
		node := nl.Node(id)
		switch node.Kind {
		case netlist.Input:
			m[id] = out.AddInput(nl.NameOf(id))
		case netlist.Latch:
			if placeholder == netlist.Nil {
				placeholder = out.AddConst(false)
			}
			l := out.AddLatch(placeholder)
			if node.Name != "" {
				out.SetName(l, node.Name)
			}
			m[id] = l
			latchPatch = append(latchPatch, id)
		case netlist.Const0, netlist.Const1:
			m[id] = out.AddConst(node.Kind == netlist.Const1)
		default:
			fan := make([]netlist.ID, len(node.Fanin))
			for i, f := range node.Fanin {
				fan[i] = m[f]
			}
			var g netlist.ID
			if node.Kind == netlist.Lut {
				g = out.AddLut(node.Mask, fan...)
			} else {
				g = out.AddGate(node.Kind, fan...)
			}
			if node.Name != "" {
				out.SetName(g, node.Name)
			}
			m[id] = g
		}
	}
	for _, l := range latchPatch {
		out.SetLatchD(m[l], m[nl.Fanin(l)[0]])
	}
	for _, p := range nl.Outputs() {
		out.MarkOutput(p.Name, m[p.Driver])
	}
	return out, m
}

func gateKey(kind netlist.Kind, fanin []netlist.ID) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d:", kind)
	for _, f := range fanin {
		fmt.Fprintf(&b, "%d,", f)
	}
	return b.String()
}
