// Package truth implements truth tables over at most six variables, the
// permutation-independent Boolean matching used for bitslice identification
// (Section II-A of the paper), and the bitslice function library.
//
// A table over n variables is stored in the low 2^n bits of a uint64: bit r
// holds f(x) for the input row r, where bit i of r is the value of variable
// i. Six variables is exactly the paper's cut-enumeration limit, so a single
// machine word always suffices, and every table operation — including input
// permutation, which is implemented as a short sequence of masked bit-pair
// swaps rather than a row-by-row loop — is a handful of word operations.
//
// Matching a cut function against the library takes one of two paths. The
// slow path, MatchAgainst, searches for an input permutation per library
// entry and remains the reference oracle for tests. The fast path is the
// canonical-form Index: every library entry's Canon() form is precomputed
// into a hash table once (NewIndex, with optional output-polarity closure
// for libraries that do not already contain both polarities), after which
// classifying a cut costs one Canon() plus one map probe, and the leaf→
// argument correspondence is recovered from the stored permutations. Both
// paths provably accept exactly the same functions: Canon() is invariant
// under input permutation, so canon(f) == canon(g) iff MatchAgainst would
// find a permutation between f and g.
package truth

import (
	"fmt"
	"math/bits"
)

// MaxVars is the largest supported variable count, matching the paper's
// 6-feasible cut limit.
const MaxVars = 6

// Table is a Boolean function of N variables.
type Table struct {
	Bits uint64
	N    int
}

// Mask returns the uint64 mask covering the 2^N valid rows.
func Mask(n int) uint64 {
	if n >= 6 {
		return ^uint64(0)
	}
	return (uint64(1) << (1 << uint(n))) - 1
}

// varPattern[i] is the truth table of the projection x_i over 6 variables.
var varPattern = [MaxVars]uint64{
	0xAAAAAAAAAAAAAAAA,
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

// Var returns the table of variable i over n variables.
func Var(i, n int) Table {
	if i < 0 || i >= n || n > MaxVars {
		panic(fmt.Sprintf("truth: Var(%d, %d) out of range", i, n))
	}
	return Table{Bits: varPattern[i] & Mask(n), N: n}
}

// Const returns the constant table v over n variables.
func Const(v bool, n int) Table {
	if v {
		return Table{Bits: Mask(n), N: n}
	}
	return Table{N: n}
}

// Not returns the complement of t.
func (t Table) Not() Table { return Table{Bits: ^t.Bits & Mask(t.N), N: t.N} }

// And returns t AND u. Both tables must have the same variable count.
func (t Table) And(u Table) Table { return t.bin(u, t.Bits&u.Bits) }

// Or returns t OR u.
func (t Table) Or(u Table) Table { return t.bin(u, t.Bits|u.Bits) }

// Xor returns t XOR u.
func (t Table) Xor(u Table) Table { return t.bin(u, t.Bits^u.Bits) }

func (t Table) bin(u Table, bits uint64) Table {
	if t.N != u.N {
		panic("truth: mixed variable counts")
	}
	return Table{Bits: bits & Mask(t.N), N: t.N}
}

// Compose returns the function of a packed k-input cell mask applied to the
// argument functions: result(x) = mask[row] where bit j of row is args[j](x).
// All argument tables must share the same variable count, which the result
// inherits; with no arguments the result is the constant mask bit 0. It is
// how cut enumeration folds LUT nodes: each fanin's cut function becomes an
// argument and the LUT's mask selects among them by Shannon expansion.
func Compose(mask uint64, args []Table) Table {
	k := len(args)
	if k > MaxVars {
		panic(fmt.Sprintf("truth: Compose with %d arguments", k))
	}
	n := 0
	if k > 0 {
		n = args[0].N
		for _, a := range args {
			if a.N != n {
				panic("truth: mixed variable counts")
			}
		}
	}
	var rec func(m uint64, j int) uint64
	rec = func(m uint64, j int) uint64 {
		if j == 0 {
			if m&1 == 1 {
				return ^uint64(0)
			}
			return 0
		}
		half := uint(1) << uint(j-1)
		lo := rec(m, j-1)
		hi := rec(m>>half, j-1)
		a := args[j-1].Bits
		return (^a & lo) | (a & hi)
	}
	return Table{Bits: rec(mask, k) & Mask(n), N: n}
}

// Eval returns f(row): the value of the function on input row r.
func (t Table) Eval(row uint) bool { return t.Bits>>(row)&1 == 1 }

// Ones returns the number of satisfying rows.
func (t Table) Ones() int { return bits.OnesCount64(t.Bits & Mask(t.N)) }

// IsConst reports whether t is a constant function and, if so, its value.
func (t Table) IsConst() (bool, bool) {
	m := Mask(t.N)
	switch t.Bits & m {
	case 0:
		return true, false
	case m:
		return true, true
	}
	return false, false
}

// Cofactor returns the cofactor of t with variable i fixed to v. The result
// still has N variables but no longer depends on variable i.
func (t Table) Cofactor(i int, v bool) Table {
	p := varPattern[i]
	shift := uint(1) << uint(i)
	var half uint64
	if v {
		half = t.Bits & p
		half |= half >> shift
	} else {
		half = t.Bits &^ p
		half |= half << shift
	}
	return Table{Bits: half & Mask(t.N), N: t.N}
}

// DependsOn reports whether t depends essentially on variable i.
func (t Table) DependsOn(i int) bool {
	return t.Cofactor(i, false).Bits != t.Cofactor(i, true).Bits
}

// Support returns the essential variable indices of t, ascending.
func (t Table) Support() []int {
	var s []int
	for i := 0; i < t.N; i++ {
		if t.DependsOn(i) {
			s = append(s, i)
		}
	}
	return s
}

// Shrink removes vacuous variables. It returns the shrunk table together
// with origVar, where origVar[j] is the original index of the shrunk
// table's variable j.
func (t Table) Shrink() (Table, []int) {
	sup := t.Support()
	if len(sup) == t.N {
		return t, identity(t.N)
	}
	out := Table{N: len(sup)}
	for r := uint(0); r < 1<<uint(len(sup)); r++ {
		// Build a full-width row with vacuous vars at 0.
		var full uint
		for j, orig := range sup {
			if r>>uint(j)&1 == 1 {
				full |= 1 << uint(orig)
			}
		}
		if t.Eval(full) {
			out.Bits |= 1 << r
		}
	}
	return out, sup
}

func identity(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// Permute returns g with g(x_0..x_{n-1}) = t(x_{p[0]}, ..., x_{p[n-1]}):
// input j of t is driven by variable p[j] of the result.
//
// When p is a true permutation of 0..N-1 (the only case the matching
// algorithms produce) the result is computed with at most N-1 masked
// bit-pair swaps — O(N) word operations instead of the O(2^N · N) row loop,
// which is what makes Canon() and the canonical-form Index cheap. Degenerate
// maps fall back to the row loop for legacy behavior.
func (t Table) Permute(p []int) Table {
	if len(p) != t.N {
		panic("truth: permutation length mismatch")
	}
	if !isPermutation(p, t.N) {
		return t.permuteSlow(p)
	}
	return Table{Bits: permuteBits(t.Bits&Mask(t.N), p), N: t.N}
}

// isPermutation reports whether p is a bijection on 0..n-1.
func isPermutation(p []int, n int) bool {
	var seen uint8
	for _, v := range p {
		if v < 0 || v >= n || seen>>uint(v)&1 == 1 {
			return false
		}
		seen |= 1 << uint(v)
	}
	return true
}

// swapRowBits exchanges row bits a and b of a truth table: the returned word
// w satisfies w[r] = bits[r with bits a and b swapped]. It is the word-level
// primitive behind the fast Permute: rows with bit a=1, b=0 trade places
// with their partners at +((1<<b)-(1<<a)) in one masked delta swap.
func swapRowBits(bits uint64, a, b int) uint64 {
	if a == b {
		return bits
	}
	if a > b {
		a, b = b, a
	}
	m := varPattern[a] &^ varPattern[b]
	s := uint(1)<<uint(b) - uint(1)<<uint(a)
	d := (bits ^ bits>>s) & m
	return bits ^ d ^ d<<s
}

// permuteBits applies the row permutation of Permute(p) to bits. It tracks
// the permutation q realized so far (starting from the identity); exchanging
// q's entries at positions j and k corresponds exactly to swapRowBits on the
// row bits q[j], q[k], so p is reached with at most len(p)-1 transpositions.
func permuteBits(bits uint64, p []int) uint64 {
	var q, pos [MaxVars]int
	n := len(p)
	for i := 0; i < n; i++ {
		q[i], pos[i] = i, i
	}
	for j := 0; j < n; j++ {
		v := p[j]
		if q[j] == v {
			continue
		}
		k := pos[v]
		bits = swapRowBits(bits, q[j], q[k])
		q[j], q[k] = q[k], q[j]
		pos[q[j]], pos[q[k]] = j, k
	}
	return bits
}

// permuteSlow is the reference row-by-row implementation, kept for
// degenerate (non-bijective) maps.
func (t Table) permuteSlow(p []int) Table {
	out := Table{N: t.N}
	for r := uint(0); r < 1<<uint(t.N); r++ {
		var tr uint
		for j := 0; j < t.N; j++ {
			if r>>uint(p[j])&1 == 1 {
				tr |= 1 << uint(j)
			}
		}
		if t.Eval(tr) {
			out.Bits |= 1 << r
		}
	}
	return out
}

// Expand lifts t onto a wider variable space: the result has n variables
// and equals t(x_{m[0]}, ..., x_{m[len(m)-1]}). len(m) must equal t.N and
// every m[j] must be < n. It is used to bring cut functions over different
// leaf sets into a common space.
//
// For injective maps (every cut merge produces one) the expansion is
// word-parallel: the table is replicated onto the vacuous top variables with
// shifted ORs and then permuted into place, O(n) word operations in total.
// This is the inner loop of cut enumeration.
func (t Table) Expand(m []int, n int) Table {
	if len(m) != t.N {
		panic("truth: Expand map length mismatch")
	}
	if n > MaxVars {
		panic("truth: Expand beyond MaxVars")
	}
	var seen uint8
	for _, v := range m {
		if v < 0 || v >= n || seen>>uint(v)&1 == 1 {
			return t.expandSlow(m, n) // non-injective or out-of-range map
		}
		seen |= 1 << uint(v)
	}
	// Replicate onto vacuous variables t.N..n-1, then send variable j of t
	// to position m[j]; the vacuous variables fill the remaining slots in
	// ascending order (their placement is irrelevant — the function does
	// not depend on them).
	bits := t.Bits & Mask(t.N)
	for i := t.N; i < n; i++ {
		bits |= bits << (1 << uint(i))
	}
	var p [MaxVars]int
	copy(p[:], m)
	next := t.N
	for v := 0; v < n; v++ {
		if seen>>uint(v)&1 == 0 {
			p[next] = v
			next++
		}
	}
	return Table{Bits: permuteBits(bits, p[:n]), N: n}
}

// expandSlow is the reference row-by-row implementation, kept for
// degenerate maps.
func (t Table) expandSlow(m []int, n int) Table {
	out := Table{N: n}
	for r := uint(0); r < 1<<uint(n); r++ {
		var tr uint
		for j := 0; j < t.N; j++ {
			if r>>uint(m[j])&1 == 1 {
				tr |= 1 << uint(j)
			}
		}
		if t.Eval(tr) {
			out.Bits |= 1 << r
		}
	}
	return out
}

// String renders the table as a hex constant annotated with arity.
func (t Table) String() string {
	return fmt.Sprintf("0x%0*x/%d", (1<<uint(t.N))/4+1, t.Bits&Mask(t.N), t.N)
}

// varSignature is a permutation-invariant per-variable fingerprint used to
// prune the canonicalization search: variables can only map to variables
// with the same signature.
func (t Table) varSignature(i int) uint64 {
	c1 := t.Cofactor(i, true)
	c0 := t.Cofactor(i, false)
	return uint64(c1.Ones())<<32 | uint64(c0.Ones())
}

// Canon returns the canonical representative of t under input permutation
// together with a permutation p such that t.Permute(p) == canon. Functions
// equal up to input permutation share a canonical representative.
//
// The search first sorts variables by a permutation-covariant signature
// (cofactor weights) and then enumerates only the permutations that respect
// the signature blocks. Signatures follow relabeling, so two
// permutation-equivalent functions induce the same block structure and the
// same candidate table set; taking the minimum over that set is therefore a
// true canonical form while enumerating k1!·k2!·… permutations instead of
// n!.
func (t Table) Canon() (Table, []int) {
	n := t.N
	if n == 0 {
		return t, nil
	}
	type varSig struct {
		v   int
		sig uint64
	}
	order := make([]varSig, n)
	for i := 0; i < n; i++ {
		order[i] = varSig{i, t.varSignature(i)}
	}
	for i := 1; i < n; i++ { // insertion sort: n <= 6
		for j := i; j > 0 && order[j].sig < order[j-1].sig; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	// Result slot j must receive a variable whose signature equals
	// order[j].sig (the j-th smallest). Since signatures are determined by
	// the function itself, every permutation-equivalent table induces the
	// same slot requirements, and the candidate sets below coincide.
	// best starts unset rather than at a ^0 sentinel: the all-ones table of
	// MaxVars variables has Bits == ^0, and a sentinel comparison would
	// never accept it, returning a nil permutation.
	best := Table{N: n}
	var bestPerm []int
	perm := make([]int, n) // perm[v] = result slot assigned to variable v
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			cand := t.Permute(perm)
			if bestPerm == nil || cand.Bits < best.Bits {
				best = cand
				bestPerm = append(bestPerm[:0], perm...)
			}
			return
		}
		// Variables order[k..hi) share a signature and may be assigned to
		// slots k..hi in any arrangement; recurse over the block.
		hi := k
		for hi < n && order[hi].sig == order[k].sig {
			hi++
		}
		slots := make([]int, hi-k)
		for i := range slots {
			slots[i] = k + i
		}
		var assign func(i int)
		assign = func(i int) {
			if i == hi-k {
				rec(hi)
				return
			}
			for s := i; s < len(slots); s++ {
				slots[i], slots[s] = slots[s], slots[i]
				perm[order[k+i].v] = slots[i]
				assign(i + 1)
				slots[i], slots[s] = slots[s], slots[i]
			}
		}
		assign(0)
	}
	rec(0)
	return best, bestPerm
}

// MatchAgainst searches for a permutation p with ref.Permute(p) == t. It
// returns the permutation and true on success. p[j] = k means input j of
// ref is driven by variable k of t (i.e. cut leaf k plays argument j of the
// reference function).
func (t Table) MatchAgainst(ref Table) ([]int, bool) {
	if t.N != ref.N {
		return nil, false
	}
	if t.Ones() != ref.Ones() {
		return nil, false
	}
	n := t.N
	// Signature multiset must agree: Permute relabels ref's inputs, and
	// cofactor weights follow the relabeling.
	tsig := make([]uint64, n)
	rsig := make([]uint64, n)
	for i := 0; i < n; i++ {
		tsig[i] = t.varSignature(i)
		rsig[i] = ref.varSignature(i)
	}

	perm := make([]int, n)
	used := make([]bool, n)
	var rec func(j int) bool
	rec = func(j int) bool {
		if j == n {
			return ref.Permute(perm).Bits == t.Bits
		}
		for v := 0; v < n; v++ {
			if used[v] || rsig[j] != tsig[v] {
				continue
			}
			used[v] = true
			perm[j] = v
			if rec(j + 1) {
				return true
			}
			used[v] = false
		}
		return false
	}
	if rec(0) {
		return perm, true
	}
	return nil, false
}
