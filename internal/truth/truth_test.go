package truth

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVarTables(t *testing.T) {
	for n := 1; n <= MaxVars; n++ {
		for i := 0; i < n; i++ {
			v := Var(i, n)
			for r := uint(0); r < 1<<uint(n); r++ {
				if v.Eval(r) != (r>>uint(i)&1 == 1) {
					t.Fatalf("Var(%d,%d).Eval(%d) wrong", i, n, r)
				}
			}
		}
	}
}

func TestBooleanOps(t *testing.T) {
	a, b := Var(0, 3), Var(1, 3)
	and := a.And(b)
	or := a.Or(b)
	xor := a.Xor(b)
	for r := uint(0); r < 8; r++ {
		av, bv := a.Eval(r), b.Eval(r)
		if and.Eval(r) != (av && bv) || or.Eval(r) != (av || bv) || xor.Eval(r) != (av != bv) {
			t.Fatalf("boolean op mismatch at row %d", r)
		}
	}
	if nt := a.Not(); nt.Bits != ^a.Bits&Mask(3) {
		t.Error("Not is wrong")
	}
}

func TestCofactorAndDepends(t *testing.T) {
	a, b, c := Var(0, 3), Var(1, 3), Var(2, 3)
	f := a.And(b).Or(c) // ab + c
	f1 := f.Cofactor(2, true)
	if ok, v := f1.IsConst(); !ok || !v {
		t.Errorf("f|c=1 should be constant 1, got %v", f1)
	}
	f0 := f.Cofactor(2, false)
	if f0.Bits != a.And(b).Bits {
		t.Errorf("f|c=0 should be ab, got %v", f0)
	}
	if !f.DependsOn(0) || !f.DependsOn(1) || !f.DependsOn(2) {
		t.Error("f should depend on all three variables")
	}
	g := a.Or(a.Not()) // constant
	if g.DependsOn(0) {
		t.Error("tautology should not depend on its variable")
	}
}

func TestShrink(t *testing.T) {
	// f over 4 vars depending only on x1 and x3: x1 & x3.
	f := Var(1, 4).And(Var(3, 4))
	s, orig := f.Shrink()
	if s.N != 2 {
		t.Fatalf("shrunk arity = %d, want 2", s.N)
	}
	if len(orig) != 2 || orig[0] != 1 || orig[1] != 3 {
		t.Fatalf("orig map = %v, want [1 3]", orig)
	}
	want := Var(0, 2).And(Var(1, 2))
	if s.Bits != want.Bits {
		t.Errorf("shrunk table = %v, want %v", s, want)
	}
}

func TestPermute(t *testing.T) {
	// f(x0,x1,x2) = x0 & ~x2. Permuting with p=[2,0,1] gives
	// g(x0,x1,x2) = f(x2,x0,x1) = x2 & ~x1.
	f := Var(0, 3).And(Var(2, 3).Not())
	g := f.Permute([]int{2, 0, 1})
	want := Var(2, 3).And(Var(1, 3).Not())
	if g.Bits != want.Bits {
		t.Errorf("permute = %v, want %v", g, want)
	}
}

func randTable(rng *rand.Rand, n int) Table {
	return Table{Bits: rng.Uint64() & Mask(n), N: n}
}

func randPerm(rng *rand.Rand, n int) []int {
	p := rng.Perm(n)
	return p
}

func TestCanonInvariantUnderPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 3000; trial++ {
		n := 1 + rng.Intn(MaxVars)
		f := randTable(rng, n)
		p := randPerm(rng, n)
		g := f.Permute(p)
		cf, pf := f.Canon()
		cg, pg := g.Canon()
		if cf.Bits != cg.Bits {
			t.Fatalf("canon not invariant: f=%v p=%v g=%v canon(f)=%v canon(g)=%v",
				f, p, g, cf, cg)
		}
		if f.Permute(pf).Bits != cf.Bits {
			t.Fatalf("returned permutation does not produce canon: f=%v perm=%v", f, pf)
		}
		if g.Permute(pg).Bits != cg.Bits {
			t.Fatalf("returned permutation does not produce canon (g)")
		}
	}
}

func TestCanonDistinguishesInequivalentFunctions(t *testing.T) {
	// and2 and or2 are not permutation equivalent.
	and2 := Var(0, 2).And(Var(1, 2))
	or2 := Var(0, 2).Or(Var(1, 2))
	ca, _ := and2.Canon()
	co, _ := or2.Canon()
	if ca.Bits == co.Bits {
		t.Error("canon(and2) == canon(or2)")
	}
}

func TestMatchAgainst(t *testing.T) {
	lib := Library()
	var mux Entry
	for _, e := range lib {
		if e.Class == ClassMux2 {
			mux = e
		}
	}
	// Build t(x0,x1,x2) = x0 ? x2 : x1  == mux with d0=x1, d1=x2, s=x0.
	s, d0, d1 := Var(0, 3), Var(1, 3), Var(2, 3)
	f := s.And(d1).Or(s.Not().And(d0))
	perm, ok := f.MatchAgainst(mux.Table)
	if !ok {
		t.Fatal("mux did not match")
	}
	// perm[j] = f-variable playing mux argument j (d0, d1, s).
	if perm[0] != 1 || perm[1] != 2 || perm[2] != 0 {
		t.Errorf("perm = %v, want [1 2 0]", perm)
	}
	// An and2 must not match the mux.
	if _, ok := Var(0, 3).And(Var(1, 3)).MatchAgainst(mux.Table); ok {
		t.Error("and2 matched mux")
	}
}

func TestMatchAgainstProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func(bitsRaw uint64, nRaw uint8) bool {
		n := int(nRaw)%MaxVars + 1
		ref := Table{Bits: bitsRaw & Mask(n), N: n}
		p := randPerm(rng, n)
		g := ref.Permute(p)
		perm, ok := g.MatchAgainst(ref)
		if !ok {
			return false
		}
		return ref.Permute(perm).Bits == g.Bits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLibraryEntriesDistinctUnderPermutation(t *testing.T) {
	lib := Library()
	seen := make(map[string]Class)
	for _, e := range lib {
		c, _ := e.Table.Canon()
		key := c.String()
		if prev, dup := seen[key]; dup {
			t.Errorf("library entries %v and %v are permutation equivalent", prev, e.Class)
		}
		seen[key] = e.Class
		if len(e.ArgNames) != e.Table.N {
			t.Errorf("%v: %d arg names for %d vars", e.Class, len(e.ArgNames), e.Table.N)
		}
		// Every library function must depend on all of its arguments.
		if sup := e.Table.Support(); len(sup) != e.Table.N {
			t.Errorf("%v depends only on %v", e.Class, sup)
		}
	}
}

func TestMux4Entry(t *testing.T) {
	var m4 Entry
	for _, e := range Library() {
		if e.Class == ClassMux4 {
			m4 = e
		}
	}
	for r := uint(0); r < 64; r++ {
		sel := (r >> 4) & 3
		want := r>>(sel)&1 == 1
		if m4.Table.Eval(r) != want {
			t.Fatalf("mux4 row %d = %v, want %v", r, m4.Table.Eval(r), want)
		}
	}
}

func TestConstAndOnes(t *testing.T) {
	c1 := Const(true, 4)
	if ok, v := c1.IsConst(); !ok || !v {
		t.Error("Const(true) not detected")
	}
	if c1.Ones() != 16 {
		t.Errorf("Const(true,4).Ones() = %d", c1.Ones())
	}
	if Var(0, 4).Ones() != 8 {
		t.Error("Var ones wrong")
	}
}
