package truth

import (
	"strings"
	"testing"
)

func TestStringFormat(t *testing.T) {
	v := Var(0, 2) // 0b1010 over 2 vars
	s := v.String()
	if !strings.Contains(s, "/2") || !strings.Contains(s, "a") {
		t.Errorf("String() = %q", s)
	}
	if got := Const(false, 0).String(); !strings.Contains(got, "/0") {
		t.Errorf("String() on 0-ary = %q", got)
	}
}

func TestClassStrings(t *testing.T) {
	for c := ClassUnknown; c < numClasses; c++ {
		if c.String() == "" || c.String() == "class(?)" {
			t.Errorf("class %d unnamed", c)
		}
	}
	if Class(200).String() != "class(?)" {
		t.Error("out-of-range class string")
	}
}

func TestSelectAndChainArgs(t *testing.T) {
	if got := SelectArgs(ClassMux2); len(got) != 1 || got[0] != 2 {
		t.Errorf("mux2 selects = %v", got)
	}
	if got := SelectArgs(ClassMux4); len(got) != 2 {
		t.Errorf("mux4 selects = %v", got)
	}
	if got := SelectArgs(ClassFASum); got != nil {
		t.Errorf("fa-sum selects = %v", got)
	}
	if ChainArgs(ClassFACarry) != 2 || ChainArgs(ClassSubBorrow) != 2 {
		t.Error("carry chain args wrong")
	}
	if ChainArgs(ClassMux2) != -1 || ChainArgs(ClassHASum) != -1 {
		t.Error("non-chain classes must report -1")
	}
}

func TestVarPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Var out of range did not panic")
		}
	}()
	Var(3, 3)
}

func TestExpandPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Expand with wrong map length did not panic")
		}
	}()
	Var(0, 2).Expand([]int{0}, 3)
}

func TestPermutePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Permute with wrong length did not panic")
		}
	}()
	Var(0, 2).Permute([]int{0})
}

func TestCanonZeroVars(t *testing.T) {
	c, perm := Const(true, 0).Canon()
	if c.N != 0 || perm != nil {
		t.Errorf("canon of 0-ary = %v %v", c, perm)
	}
}

func TestShrinkNoVacuous(t *testing.T) {
	f := Var(0, 3).Xor(Var(1, 3)).Xor(Var(2, 3))
	s, m := f.Shrink()
	if s.N != 3 || len(m) != 3 {
		t.Errorf("shrink of full-support fn changed arity: %v %v", s, m)
	}
	if s.Bits != f.Bits {
		t.Error("shrink altered full-support table")
	}
}

func TestMatchAgainstArityMismatch(t *testing.T) {
	if _, ok := Var(0, 2).MatchAgainst(Var(0, 3)); ok {
		t.Error("matched across arities")
	}
	// Ones-count fast path.
	and2 := Var(0, 2).And(Var(1, 2))
	or2 := Var(0, 2).Or(Var(1, 2))
	if _, ok := and2.MatchAgainst(or2); ok {
		t.Error("and2 matched or2")
	}
}

func TestLibraryArgDocumentation(t *testing.T) {
	for _, e := range Library() {
		for _, name := range e.ArgNames {
			if name == "" {
				t.Errorf("%v: empty arg name", e.Class)
			}
		}
	}
}
