package truth

// Differential tests pinning the canonical-index fast path to the
// MatchAgainst slow path, plus exhaustive canonicalization checks. The slow
// path is the oracle everywhere: the index must classify exactly the
// functions MatchAgainst accepts, with permutations satisfying the same
// contract.

import (
	"math/rand"
	"testing"
)

// permutations returns all n! permutations of 0..n-1.
func permutations(n int) [][]int {
	if n == 0 {
		return [][]int{{}}
	}
	var out [][]int
	sub := permutations(n - 1)
	for _, p := range sub {
		for i := 0; i <= len(p); i++ {
			q := make([]int, 0, n)
			q = append(q, p[:i]...)
			q = append(q, n-1)
			q = append(q, p[i:]...)
			out = append(out, q)
		}
	}
	return out
}

func TestPermuteFastMatchesSlow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5000; trial++ {
		n := 1 + rng.Intn(MaxVars)
		tab := randTable(rng, n)
		p := rng.Perm(n)
		if got, want := tab.Permute(p), tab.permuteSlow(p); got != want {
			t.Fatalf("Permute(%v, %v) = %v, slow path says %v", tab, p, got, want)
		}
	}
}

func TestExpandFastMatchesSlow(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 5000; trial++ {
		nt := rng.Intn(MaxVars + 1)
		n := nt + rng.Intn(MaxVars-nt+1)
		tab := randTable(rng, nt)
		m := rng.Perm(n)[:nt] // injective map into 0..n-1
		if got, want := tab.Expand(m, n), tab.expandSlow(m, n); got != want {
			t.Fatalf("Expand(%v, %v, %d) = %v, slow path says %v", tab, m, n, got, want)
		}
	}
}

// TestCanonExhaustive4Var sweeps every 4-variable function: the canon of
// all 24 permuted variants must agree, and every returned permutation must
// reproduce the canon. Short mode samples the space.
func TestCanonExhaustive4Var(t *testing.T) {
	perms := permutations(4)
	step := uint64(1)
	if testing.Short() {
		step = 31
	}
	for bits := uint64(0); bits < 1<<16; bits += step {
		f := Table{Bits: bits, N: 4}
		canon, pf := f.Canon()
		if f.Permute(pf).Bits != canon.Bits {
			t.Fatalf("f=%v: Permute(canon perm) != canon", f)
		}
		for _, sigma := range perms {
			g := f.Permute(sigma)
			cg, pg := g.Canon()
			if cg.Bits != canon.Bits {
				t.Fatalf("f=%v sigma=%v: canon(g)=%v != canon(f)=%v", f, sigma, cg, canon)
			}
			if g.Permute(pg).Bits != cg.Bits {
				t.Fatalf("f=%v sigma=%v: g.Permute(canon perm) != canon", f, sigma)
			}
		}
	}
}

// lookupClasses extracts the matched class sequence of an index lookup.
func lookupClasses(hits []Hit) []Class {
	var out []Class
	for _, h := range hits {
		out = append(out, h.Entry.Class)
	}
	return out
}

// slowClasses runs the MatchAgainst oracle over a library.
func slowClasses(t Table, lib []Entry) ([]Class, map[Class][]int) {
	var classes []Class
	perms := make(map[Class][]int)
	for _, e := range lib {
		if e.Table.N != t.N {
			continue
		}
		if p, ok := t.MatchAgainst(e.Table); ok {
			classes = append(classes, e.Class)
			perms[e.Class] = p
		}
	}
	return classes, perms
}

func sameClasses(a, b []Class) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkDifferential asserts that the index and the MatchAgainst oracle
// agree on t: same accepted entries, contract-satisfying permutations, and
// identical permutations whenever the hit is Unique.
func checkDifferential(t *testing.T, ix *Index, lib []Entry, tab Table) {
	t.Helper()
	hits := ix.Lookup(tab)
	want, oraclePerms := slowClasses(tab, lib)
	if !sameClasses(lookupClasses(hits), want) {
		t.Fatalf("t=%v: index classes %v, oracle classes %v", tab, lookupClasses(hits), want)
	}
	for _, h := range hits {
		if h.Entry.Table.Permute(h.Perm).Bits != tab.Bits {
			t.Fatalf("t=%v class=%v: hit perm %v does not reproduce t", tab, h.Entry.Class, h.Perm)
		}
		if h.Unique {
			op := oraclePerms[h.Entry.Class]
			for j := range h.Perm {
				if h.Perm[j] != op[j] {
					t.Fatalf("t=%v class=%v: unique hit perm %v != oracle perm %v",
						tab, h.Entry.Class, h.Perm, op)
				}
			}
		}
	}
}

// TestIndexExhaustiveSmallArity pins the index to the oracle on every
// 2-variable (16) and 3-variable (256) function — the arities where the
// default library actually lives.
func TestIndexExhaustiveSmallArity(t *testing.T) {
	lib := Library()
	ix := NewIndex(lib)
	for n := 1; n <= 3; n++ {
		for bits := uint64(0); bits < 1<<(1<<uint(n)); bits++ {
			checkDifferential(t, ix, lib, Table{Bits: bits, N: n})
		}
	}
}

// TestIndexExhaustive4VarMisses sweeps all 4-variable functions: the
// library has no 4-input entry, so every lookup must miss, exactly like the
// oracle (this also exercises the HasArity fast-out).
func TestIndexExhaustive4VarMisses(t *testing.T) {
	lib := Library()
	ix := NewIndex(lib)
	step := uint64(1)
	if testing.Short() {
		step = 13
	}
	for bits := uint64(0); bits < 1<<16; bits += step {
		tab := Table{Bits: bits, N: 4}
		if hits := ix.Lookup(tab); hits != nil {
			t.Fatalf("4-var function %v hit %v; library has no 4-input entry", tab, lookupClasses(hits))
		}
		if cls, _ := slowClasses(tab, lib); cls != nil {
			t.Fatalf("oracle matched a 4-var function %v: %v", tab, cls)
		}
	}
}

// TestIndexRandomWideArity cross-checks random 5- and 6-variable functions
// (almost all misses) and permuted library entries (guaranteed hits,
// including the 6-input mux4) against the oracle.
func TestIndexRandomWideArity(t *testing.T) {
	lib := Library()
	ix := NewIndex(lib)
	rng := rand.New(rand.NewSource(42))
	trials := 4000
	if testing.Short() {
		trials = 500
	}
	for trial := 0; trial < trials; trial++ {
		n := 5 + rng.Intn(2)
		checkDifferential(t, ix, lib, randTable(rng, n))
	}
	for trial := 0; trial < 200; trial++ {
		for _, e := range lib {
			g := e.Table.Permute(rng.Perm(e.Table.N))
			checkDifferential(t, ix, lib, g)
			if len(ix.Lookup(g)) == 0 {
				t.Fatalf("permuted %v entry missed the index", e.Class)
			}
		}
	}
}

// TestIndexPolarityClosure: with polarity closure, the complement of an
// entry whose complement is NOT in the library (and3 -> nand3) must hit
// with OutNegated; the plain index and the oracle must keep missing it.
func TestIndexPolarityClosure(t *testing.T) {
	lib := Library()
	plain := NewIndex(lib)
	np := NewIndexWithPolarity(lib)

	var and3 Entry
	for _, e := range lib {
		if e.Class == ClassAnd3 {
			and3 = e
		}
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		nand3 := and3.Table.Not().Permute(rng.Perm(3))
		if hits := plain.Lookup(nand3); len(hits) != 0 {
			t.Fatalf("plain index matched nand3 as %v", lookupClasses(hits))
		}
		if cls, _ := slowClasses(nand3, lib); cls != nil {
			t.Fatalf("oracle matched nand3: %v", cls)
		}
		hits := np.Lookup(nand3)
		foundAnd3 := false
		for _, h := range hits {
			if h.Entry.Class == ClassAnd3 {
				foundAnd3 = true
				if !h.OutNegated {
					t.Fatal("nand3 hit and3 without OutNegated")
				}
				if h.Entry.Table.Permute(h.Perm).Bits != nand3.Not().Bits {
					t.Fatalf("polarity hit perm %v does not reproduce ~t", h.Perm)
				}
			}
		}
		if !foundAnd3 {
			t.Fatalf("polarity index missed nand3 (hits %v)", lookupClasses(hits))
		}
	}

	// Direct hits must never be flagged negated, at any polarity setting.
	for _, e := range lib {
		for _, h := range np.Lookup(e.Table) {
			if h.Entry.Class == e.Class && h.OutNegated {
				t.Errorf("%v matched itself with OutNegated", e.Class)
			}
		}
	}
}

// TestIndexUniqueFlag: entries with non-trivial automorphisms (fully
// symmetric slices like ha-sum) must not be flagged Unique; asymmetric
// entries like mux2 must be.
func TestIndexUniqueFlag(t *testing.T) {
	ix := NewIndex(Library())
	wantUnique := map[Class]bool{ClassMux2: true, ClassMux2Inv: true, ClassAndNot: true, ClassOrNot: true}
	// Fully symmetric slices (ha-sum, fa-carry, ...) and mux4 — whose
	// s0↔s1 swap composed with d1↔d2 is an automorphism — admit several
	// valid permutations.
	wantAmbiguous := map[Class]bool{ClassHASum: true, ClassHACarry: true,
		ClassFASum: true, ClassFACarry: true, ClassMux4: true}
	for _, e := range Library() {
		hits := ix.Lookup(e.Table)
		if len(hits) == 0 {
			t.Fatalf("%v missed its own index", e.Class)
		}
		for _, h := range hits {
			if h.Entry.Class != e.Class {
				continue
			}
			if wantUnique[e.Class] && !h.Unique {
				t.Errorf("%v should have a unique permutation", e.Class)
			}
			if wantAmbiguous[e.Class] && h.Unique {
				t.Errorf("%v is symmetric and must not be flagged Unique", e.Class)
			}
		}
	}
}
