package truth

// FuzzCanon drives random (bits, arity, permutation) triples through the
// canonicalization and index machinery: Canon must be invariant under input
// permutation, returned permutations must reproduce the canon, Permute must
// round-trip through its inverse, and the canonical index must agree with
// the MatchAgainst oracle — all without panicking. The seed corpus contains
// every library entry, so `go test` alone already covers the whole library.

import "testing"

// fuzzPerm derives a permutation of 0..n-1 from a seed with a Fisher-Yates
// shuffle over a tiny deterministic LCG (no math/rand: the corpus must stay
// stable across Go releases).
func fuzzPerm(seed uint64, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s := seed
	for i := n - 1; i > 0; i-- {
		s = s*6364136223846793005 + 1442695040888963407
		j := int(s>>33) % (i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

func FuzzCanon(f *testing.F) {
	for i, e := range Library() {
		f.Add(e.Table.Bits, uint8(e.Table.N), uint64(i))
	}
	f.Add(uint64(0), uint8(1), uint64(0))
	f.Add(^uint64(0), uint8(6), uint64(99))

	lib := Library()
	ix := NewIndex(lib)
	np := NewIndexWithPolarity(lib)

	f.Fuzz(func(t *testing.T, bitsRaw uint64, nRaw uint8, permSeed uint64) {
		n := int(nRaw)%MaxVars + 1
		tab := Table{Bits: bitsRaw & Mask(n), N: n}
		p := fuzzPerm(permSeed, n)

		// Permute round-trips through its inverse.
		inv := make([]int, n)
		for j, v := range p {
			inv[v] = j
		}
		g := tab.Permute(p)
		if back := g.Permute(inv); back.Bits != tab.Bits {
			t.Fatalf("t=%v p=%v: inverse permute gave %v", tab, p, back)
		}

		// Canon is permutation-invariant and its permutation reproduces it.
		ct, pt := tab.Canon()
		cg, pg := g.Canon()
		if ct.Bits != cg.Bits {
			t.Fatalf("t=%v p=%v: canon not invariant (%v vs %v)", tab, p, ct, cg)
		}
		if tab.Permute(pt).Bits != ct.Bits || g.Permute(pg).Bits != cg.Bits {
			t.Fatalf("t=%v: canon permutation does not reproduce canon", tab)
		}

		// Index lookups agree with the MatchAgainst oracle on both tables,
		// and hit permutations honor their contract.
		for _, cand := range []Table{tab, g} {
			hits := ix.Lookup(cand)
			oracle, _ := slowClasses(cand, lib)
			if !sameClasses(lookupClasses(hits), oracle) {
				t.Fatalf("t=%v: index %v, oracle %v", cand, lookupClasses(hits), oracle)
			}
			for _, h := range hits {
				if h.Entry.Table.Permute(h.Perm).Bits != cand.Bits {
					t.Fatalf("t=%v: hit perm %v broken", cand, h.Perm)
				}
			}
			for _, h := range np.Lookup(cand) {
				want := cand.Bits
				if h.OutNegated {
					want = cand.Not().Bits
				}
				if h.Entry.Table.Permute(h.Perm).Bits != want {
					t.Fatalf("t=%v: polarity hit perm %v broken", cand, h.Perm)
				}
			}
		}
	})
}
