package truth

// This file implements the canonical-form library index: the fast path of
// permutation-independent Boolean matching (Section II-A). Instead of
// searching for a permutation per library entry (MatchAgainst), the index
// precomputes Canon() for every entry once; classifying a candidate
// function then costs one Canon() plus one hash probe, and the leaf→formal-
// argument correspondence is recovered by composing the stored entry
// permutation with the inverse of the candidate's canonizing permutation.
//
// Soundness and completeness relative to the slow path follow from Canon()
// being a true canonical form: canon(f) == canon(g) iff f and g are equal
// up to input permutation, which is exactly the relation MatchAgainst
// decides. The exhaustive and differential tests in index_test.go pin the
// two paths against each other.

import "sort"

// Hit is one library entry matched by an Index lookup.
type Hit struct {
	Entry Entry
	// Perm satisfies Entry.Table.Permute(Perm) == t for the looked-up
	// table t (Entry.Table.Permute(Perm) == t.Not() when OutNegated):
	// the same contract as Table.MatchAgainst, so Perm[j] names the
	// candidate variable playing formal argument j.
	Perm []int
	// Unique reports that Perm is the only permutation satisfying the
	// contract (the entry has a trivial automorphism group). When false,
	// other valid permutations exist and MatchAgainst may return a
	// different — equally valid — one.
	Unique bool
	// OutNegated reports that the entry matched with its output
	// complemented. Only produced by indexes built with polarity closure
	// (NewIndexWithPolarity).
	OutNegated bool
}

type indexKey struct {
	bits uint64
	n    int8
}

type indexedEntry struct {
	entry  Entry
	perm   []int // entry.Table.Permute(perm) == canon of the (possibly negated) table
	libPos int
	outNeg bool
	unique bool
}

// Index is a canonical-form hash index over a bitslice library. It is
// immutable after construction and safe for concurrent lookups.
type Index struct {
	m     map[indexKey][]indexedEntry
	arity [MaxVars + 1]bool
}

// NewIndex builds the permutation-closure index of lib: a lookup hits
// exactly the entries MatchAgainst would accept. The default library lists
// both output polarities explicitly (and2/nand2, or2/nor2, xor2/xnor2,
// mux2/mux2-inv, ...), so permutation closure is all it needs; libraries
// that omit complements should use NewIndexWithPolarity.
func NewIndex(lib []Entry) *Index {
	return newIndex(lib, false)
}

// NewIndexWithPolarity builds the index with output-polarity (NP) closure:
// each entry is additionally indexed under the canonical form of its
// complement, and such hits carry OutNegated. Entries whose complement is
// permutation-equivalent to the entry itself (e.g. fa-sum) produce no
// separate negated key.
func NewIndexWithPolarity(lib []Entry) *Index {
	return newIndex(lib, true)
}

func newIndex(lib []Entry, polarity bool) *Index {
	ix := &Index{m: make(map[indexKey][]indexedEntry, 2*len(lib))}
	for pos, e := range lib {
		canon, perm := e.Table.Canon()
		ix.arity[e.Table.N] = true
		ix.add(indexKey{canon.Bits, int8(e.Table.N)}, indexedEntry{
			entry:  e,
			perm:   perm,
			libPos: pos,
			unique: automorphismFree(e.Table),
		})
		if polarity {
			not := e.Table.Not()
			ncanon, nperm := not.Canon()
			if ncanon.Bits == canon.Bits {
				continue // self-complementary up to permutation
			}
			ix.add(indexKey{ncanon.Bits, int8(e.Table.N)}, indexedEntry{
				entry:  e,
				perm:   nperm,
				libPos: pos,
				outNeg: true,
				unique: automorphismFree(not),
			})
		}
	}
	// Hits surface in library order; for a (pathological) library where
	// one canon key holds both a direct and a negated entry, direct wins
	// ties.
	for k := range ix.m {
		es := ix.m[k]
		sort.Slice(es, func(i, j int) bool {
			if es[i].libPos != es[j].libPos {
				return es[i].libPos < es[j].libPos
			}
			return !es[i].outNeg && es[j].outNeg
		})
	}
	return ix
}

func (ix *Index) add(k indexKey, e indexedEntry) {
	ix.m[k] = append(ix.m[k], e)
}

// automorphismFree reports whether the identity is t's only input-
// permutation automorphism. Build-time only: it enumerates all n!
// permutations, which the fast Permute makes negligible for n <= 6.
func automorphismFree(t Table) bool {
	n := t.N
	perm := make([]int, n)
	used := make([]bool, n)
	auts := 0
	var rec func(j int) bool
	rec = func(j int) bool {
		if j == n {
			if t.Permute(perm).Bits == t.Bits&Mask(n) {
				auts++
			}
			return auts > 1
		}
		for v := 0; v < n; v++ {
			if used[v] {
				continue
			}
			used[v] = true
			perm[j] = v
			stop := rec(j + 1)
			used[v] = false
			if stop {
				return true
			}
		}
		return false
	}
	rec(0)
	return auts <= 1
}

// HasArity reports whether any entry has exactly n variables. Callers use
// it to skip the Canon() of candidate arities the library cannot match.
func (ix *Index) HasArity(n int) bool {
	return n >= 0 && n <= MaxVars && ix.arity[n]
}

// Lookup classifies t against the indexed library: one Canon() plus one
// hash probe. The returned hits are in library order; each satisfies
// Hit.Entry.Table.Permute(Hit.Perm) == t (== t.Not() when OutNegated).
// A nil result means no entry is permutation-equivalent to t — exactly the
// functions MatchAgainst rejects against every entry.
func (ix *Index) Lookup(t Table) []Hit {
	if !ix.HasArity(t.N) {
		return nil
	}
	canon, pt := t.Canon()
	return ix.lookupCanon(canon, pt, t.N)
}

// LookupCanon is Lookup for callers that also want t's canonical form —
// typically to key an unmatched function's equivalence class. It returns
// the hits together with canon and a permutation pt with
// t.Permute(pt) == canon, paying a single Canon() for both uses.
func (ix *Index) LookupCanon(t Table) (hits []Hit, canon Table, pt []int) {
	canon, pt = t.Canon()
	if !ix.HasArity(t.N) {
		return nil, canon, pt
	}
	return ix.lookupCanon(canon, pt, t.N), canon, pt
}

func (ix *Index) lookupCanon(canon Table, pt []int, n int) []Hit {
	es := ix.m[indexKey{canon.Bits, int8(n)}]
	if len(es) == 0 {
		return nil
	}
	// t.Permute(pt) == canon and e.Table.Permute(e.perm) == canon, so
	// e.Table.Permute(inv(pt) ∘ e.perm) == t: formal argument j is played
	// by candidate variable inv(pt)[e.perm[j]].
	var inv [MaxVars]int
	for j, v := range pt {
		inv[v] = j
	}
	hits := make([]Hit, len(es))
	for i, e := range es {
		perm := make([]int, n)
		for j, v := range e.perm {
			perm[j] = inv[v]
		}
		hits[i] = Hit{Entry: e.entry, Perm: perm, Unique: e.unique, OutNegated: e.outNeg}
	}
	return hits
}
