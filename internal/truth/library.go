package truth

import "sync"

// This file defines the bitslice function library used by the cut-based
// matching algorithm (Section II-A). Each entry is a small Boolean function
// that appears as the replicated 1-bit slice of a common multibit datapath
// operator. Matching a cut against an entry yields both the slice class and
// the correspondence between cut leaves and the slice's formal arguments
// (e.g. which leaf is the select of a mux).

// Class identifies a library bitslice function.
type Class uint8

// Library bitslice classes.
const (
	ClassUnknown   Class = iota
	ClassMux2            // f(d0, d1, s) = s ? d1 : d0
	ClassFASum           // f(a, b, cin) = a ^ b ^ cin        (full-adder sum)
	ClassFACarry         // f(a, b, cin) = maj(a, b, cin)     (full-adder carry)
	ClassSubBorrow       // f(a, b, bin) = maj(~a, b, bin)    (full-subtractor borrow)
	ClassHASum           // f(a, b) = a ^ b                   (half-adder sum / xor2)
	ClassHACarry         // f(a, b) = a & b                   (half-adder carry / and2)
	ClassXnor2           // f(a, b) = ~(a ^ b)                (equality slice)
	ClassOr2             // f(a, b) = a | b
	ClassNor2            // f(a, b) = ~(a | b)
	ClassNand2           // f(a, b) = ~(a & b)
	ClassAndNot          // f(a, b) = a & ~b                  (gating / less-than slice)
	ClassOrNot           // f(a, b) = a | ~b                  (greater-equal slice)
	ClassMinterm2        // f(a, b) = ~a & ~b                 (2-input decoder slice, minterm 0)
	ClassMinterm3        // f(a, b, c) = ~a & ~b & ~c         (3-input decoder slice)
	ClassAnd3            // f(a, b, c) = a & b & c
	ClassOr3             // f(a, b, c) = a | b | c
	ClassXor3Not         // f(a, b, cin) = ~(a ^ b ^ cin)     (subtractor difference, one polarity)
	ClassMux2Inv         // f(d0, d1, s) = s ? ~d1 : ~d0      (inverting mux)
	ClassAoi21           // f(a, b, c) = ~((a & b) | c)
	ClassOai21           // f(a, b, c) = ~((a | b) & c)
	ClassMux4            // f(d0..d3, s0, s1) = d[s1s0]       (4:1 mux slice)
	numClasses
)

var classNames = [numClasses]string{
	"unknown", "mux2", "fa-sum", "fa-carry", "sub-borrow", "ha-sum",
	"ha-carry", "xnor2", "or2", "nor2", "nand2", "and-not", "or-not",
	"minterm2", "minterm3", "and3", "or3", "xor3-not", "mux2-inv",
	"aoi21", "oai21", "mux4",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "class(?)"
}

// Entry is one library function.
type Entry struct {
	Class Class
	Table Table
	// ArgNames documents the formal arguments, index-aligned with the
	// table's variables.
	ArgNames []string
}

// buildEntry evaluates f over all rows of an n-variable table.
func buildEntry(class Class, n int, args []string, f func(row uint) bool) Entry {
	var t Table
	t.N = n
	for r := uint(0); r < 1<<uint(n); r++ {
		if f(r) {
			t.Bits |= 1 << r
		}
	}
	return Entry{Class: class, Table: t, ArgNames: args}
}

func bit(r uint, i int) bool { return r>>uint(i)&1 == 1 }

// Library returns the default bitslice library. The returned slice is
// freshly allocated and may be extended by callers with design-specific
// slices (Section VI-B.1).
func Library() []Entry {
	maj := func(a, b, c bool) bool { return a && b || b && c || c && a }
	return []Entry{
		buildEntry(ClassMux2, 3, []string{"d0", "d1", "s"}, func(r uint) bool {
			if bit(r, 2) {
				return bit(r, 1)
			}
			return bit(r, 0)
		}),
		buildEntry(ClassMux2Inv, 3, []string{"d0", "d1", "s"}, func(r uint) bool {
			if bit(r, 2) {
				return !bit(r, 1)
			}
			return !bit(r, 0)
		}),
		buildEntry(ClassFASum, 3, []string{"a", "b", "cin"}, func(r uint) bool {
			return bit(r, 0) != bit(r, 1) != bit(r, 2)
		}),
		buildEntry(ClassXor3Not, 3, []string{"a", "b", "cin"}, func(r uint) bool {
			return !(bit(r, 0) != bit(r, 1) != bit(r, 2))
		}),
		buildEntry(ClassFACarry, 3, []string{"a", "b", "cin"}, func(r uint) bool {
			return maj(bit(r, 0), bit(r, 1), bit(r, 2))
		}),
		buildEntry(ClassSubBorrow, 3, []string{"a", "b", "bin"}, func(r uint) bool {
			return maj(!bit(r, 0), bit(r, 1), bit(r, 2))
		}),
		buildEntry(ClassHASum, 2, []string{"a", "b"}, func(r uint) bool {
			return bit(r, 0) != bit(r, 1)
		}),
		buildEntry(ClassXnor2, 2, []string{"a", "b"}, func(r uint) bool {
			return bit(r, 0) == bit(r, 1)
		}),
		buildEntry(ClassHACarry, 2, []string{"a", "b"}, func(r uint) bool {
			return bit(r, 0) && bit(r, 1)
		}),
		buildEntry(ClassOr2, 2, []string{"a", "b"}, func(r uint) bool {
			return bit(r, 0) || bit(r, 1)
		}),
		buildEntry(ClassNor2, 2, []string{"a", "b"}, func(r uint) bool {
			return !(bit(r, 0) || bit(r, 1))
		}),
		buildEntry(ClassNand2, 2, []string{"a", "b"}, func(r uint) bool {
			return !(bit(r, 0) && bit(r, 1))
		}),
		buildEntry(ClassAndNot, 2, []string{"a", "b"}, func(r uint) bool {
			return bit(r, 0) && !bit(r, 1)
		}),
		buildEntry(ClassOrNot, 2, []string{"a", "b"}, func(r uint) bool {
			return bit(r, 0) || !bit(r, 1)
		}),
		// Note: the 2-input decoder minterm ~a&~b is function-identical to
		// nor2 and is therefore covered by the ClassNor2 entry.
		buildEntry(ClassMinterm3, 3, []string{"a", "b", "c"}, func(r uint) bool {
			return !bit(r, 0) && !bit(r, 1) && !bit(r, 2)
		}),
		buildEntry(ClassAnd3, 3, []string{"a", "b", "c"}, func(r uint) bool {
			return bit(r, 0) && bit(r, 1) && bit(r, 2)
		}),
		buildEntry(ClassOr3, 3, []string{"a", "b", "c"}, func(r uint) bool {
			return bit(r, 0) || bit(r, 1) || bit(r, 2)
		}),
		buildEntry(ClassAoi21, 3, []string{"a", "b", "c"}, func(r uint) bool {
			return !(bit(r, 0) && bit(r, 1) || bit(r, 2))
		}),
		buildEntry(ClassOai21, 3, []string{"a", "b", "c"}, func(r uint) bool {
			return !((bit(r, 0) || bit(r, 1)) && bit(r, 2))
		}),
		buildEntry(ClassMux4, 6, []string{"d0", "d1", "d2", "d3", "s0", "s1"}, func(r uint) bool {
			sel := 0
			if bit(r, 4) {
				sel |= 1
			}
			if bit(r, 5) {
				sel |= 2
			}
			return bit(r, sel)
		}),
	}
}

var defaultIndex struct {
	once sync.Once
	ix   *Index
}

// DefaultIndex returns the canonical-form index of Library(), built once
// per process. The default library lists both output polarities of every
// slice explicitly, so permutation closure (NewIndex) matches exactly what
// MatchAgainst accepts; no polarity closure is needed. The index is
// immutable and safe for concurrent use.
func DefaultIndex() *Index {
	defaultIndex.once.Do(func() {
		defaultIndex.ix = NewIndex(Library())
	})
	return defaultIndex.ix
}

// SelectArgs returns, for classes that have select/control arguments, the
// argument indices that are controls (as opposed to data). Aggregation by
// common signal groups slices on these arguments.
func SelectArgs(c Class) []int {
	switch c {
	case ClassMux2, ClassMux2Inv:
		return []int{2}
	case ClassMux4:
		return []int{4, 5}
	case ClassMinterm2:
		return []int{0, 1}
	case ClassMinterm3, ClassAnd3, ClassOr3:
		return nil
	}
	return nil
}

// ChainArgs returns, for classes aggregated by propagated signal, the
// argument index that receives the propagated value (e.g. carry-in), or -1.
func ChainArgs(c Class) int {
	switch c {
	case ClassFACarry, ClassSubBorrow:
		return 2 // cin / bin
	case ClassFASum, ClassXor3Not:
		return 2
	case ClassHASum, ClassXnor2:
		return -1 // parity trees chain on any argument
	}
	return -1
}
