package sim

import (
	"testing"

	"netlistre/internal/netlist"
)

func TestPaperExamples(t *testing.T) {
	// The exact examples given in Section II-C.1 of the paper.
	cases := []struct {
		name string
		got  Value
		want Value
	}{
		{"and(D,1)", And(D, One), D},
		{"and(D,0)", And(D, Zero), Zero},
		{"and(0,X)", And(Zero, X), Zero},
		{"not(X)", Not(X), X},
		{"not(D)", Not(D), DBar},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestSymbolConsistency(t *testing.T) {
	// D and D̄ refer to the SAME symbol, so D&D̄=0, D|D̄=1, D^D̄=1.
	if And(D, DBar) != Zero {
		t.Error("D & D̄ should be 0")
	}
	if Or(D, DBar) != One {
		t.Error("D | D̄ should be 1")
	}
	if Xor(D, DBar) != One {
		t.Error("D ^ D̄ should be 1")
	}
	if Xor(D, D) != Zero {
		t.Error("D ^ D should be 0")
	}
	// X absorbs when the symbol cannot force the result.
	if And(D, X) != X || Or(D, X) != X || Xor(D, X) != X {
		t.Error("X handling wrong in D context")
	}
	// ...but D&D̄ dominates X: the product is 0 whatever X is.
	if And(D, DBar, X) != Zero {
		t.Error("D & D̄ & X should be 0")
	}
	if Or(D, DBar, X) != One {
		t.Error("D | D̄ | X should be 1")
	}
}

// concretize maps a five-valued value to a concrete bool under a chosen
// symbol value; ok is false for X (unconstrained).
func concretize(v Value, sym bool) (bool, bool) {
	switch v {
	case Zero:
		return false, true
	case One:
		return true, true
	case D:
		return sym, true
	case DBar:
		return !sym, true
	}
	return false, false
}

// TestSoundnessAgainstConcrete checks the defining property of the
// D-calculus: for every gate and every five-valued input vector, if the
// output is not X, then for BOTH values of the symbol and EVERY
// concretization of X inputs, concrete evaluation matches.
func TestSoundnessAgainstConcrete(t *testing.T) {
	kinds := []netlist.Kind{netlist.And, netlist.Or, netlist.Nand,
		netlist.Nor, netlist.Xor, netlist.Xnor}
	vals := []Value{Zero, One, D, DBar, X}
	for _, kind := range kinds {
		for a := range vals {
			for b := range vals {
				for c := range vals {
					in := []Value{vals[a], vals[b], vals[c]}
					out := EvalGate(kind, in)
					if out == X {
						continue
					}
					for _, sym := range []bool{false, true} {
						for xm := 0; xm < 8; xm++ {
							concrete := make([]bool, 3)
							for i, v := range in {
								cv, ok := concretize(v, sym)
								if !ok {
									cv = xm>>uint(i)&1 == 1
								}
								concrete[i] = cv
							}
							want := netlist.EvalKind(kind, concrete)
							got, _ := concretize(out, sym)
							if got != want {
								t.Fatalf("%v%v: out=%v but concrete(sym=%v,xs=%d)=%v",
									kind, in, out, sym, xm, want)
							}
						}
					}
				}
			}
		}
	}
}

func TestRunSelectorCircuit(t *testing.T) {
	// Figure 2 of the paper: w_i = mux(c, ~u_i, ~v_i) built from gates.
	// Setting u=D,D,D with c=0 must propagate D̄ to every w bit.
	nl := netlist.New("fig2")
	c := nl.AddInput("c")
	var u, v, w []netlist.ID
	for i := 0; i < 3; i++ {
		u = append(u, nl.AddInput("u"+string(rune('1'+i))))
		v = append(v, nl.AddInput("v"+string(rune('1'+i))))
	}
	nc := nl.AddGate(netlist.Not, c)
	for i := 0; i < 3; i++ {
		nu := nl.AddGate(netlist.Not, u[i])
		nv := nl.AddGate(netlist.Not, v[i])
		w = append(w, nl.AddGate(netlist.Or,
			nl.AddGate(netlist.And, nc, nu),
			nl.AddGate(netlist.And, c, nv)))
	}

	assign := map[netlist.ID]Value{c: Zero}
	for _, ui := range u {
		assign[ui] = D
	}
	// v unassigned -> X.
	vals := Run(nl, assign)
	for i, wi := range w {
		if vals[wi] != DBar {
			t.Errorf("w%d = %v, want D̄ (negated propagation under c=0)", i+1, vals[wi])
		}
	}

	// With c=1 the selector picks ~v, and since v is X the outputs are X.
	assign[c] = One
	vals = Run(nl, assign)
	for i, wi := range w {
		if vals[wi] != X {
			t.Errorf("c=1: w%d = %v, want X", i+1, vals[wi])
		}
	}

	// With c unknown the output mixes D̄ and X -> X.
	delete(assign, c)
	vals = Run(nl, assign)
	for i, wi := range w {
		if vals[wi] != X {
			t.Errorf("c=X: w%d = %v, want X", i+1, vals[wi])
		}
	}
}

func TestXorChainParity(t *testing.T) {
	if Xor(D, D, D) != D {
		t.Error("xor of three Ds should be D")
	}
	if Xor(D, DBar, One) != Zero {
		t.Error("D ^ D̄ ^ 1 should be 0")
	}
	if Xor(DBar, DBar) != Zero {
		t.Error("D̄ ^ D̄ should be 0")
	}
	if Xor(DBar, One) != D {
		t.Error("D̄ ^ 1 should be D")
	}
}
