// Package sim implements five-valued symbolic simulation over the domain
// {0, 1, D, D̄, X} in the style of Roth's D-calculus, as used by the
// paper's symbolic word-propagation algorithm (Section II-C.1). D stands
// for an arbitrary-but-consistent symbolic value in {0,1}; D̄ is its
// complement; X is an unknown, unconstrained value.
package sim

import (
	"netlistre/internal/netlist"
)

// Value is a five-valued signal level.
type Value uint8

// Signal levels.
const (
	Zero Value = iota
	One
	D    // the symbolic value
	DBar // complement of the symbolic value
	X    // unknown
)

var valueNames = [...]string{"0", "1", "D", "D̄", "X"}

func (v Value) String() string {
	if int(v) < len(valueNames) {
		return valueNames[v]
	}
	return "?"
}

// IsSymbolic reports whether v carries the symbol (D or D̄).
func (v Value) IsSymbolic() bool { return v == D || v == DBar }

// Not returns the five-valued complement.
func Not(v Value) Value {
	switch v {
	case Zero:
		return One
	case One:
		return Zero
	case D:
		return DBar
	case DBar:
		return D
	}
	return X
}

// And folds the five-valued conjunction over its arguments.
func And(vs ...Value) Value {
	anyX := false
	hasD, hasDbar := false, false
	for _, v := range vs {
		switch v {
		case Zero:
			return Zero
		case X:
			anyX = true
		case D:
			hasD = true
		case DBar:
			hasDbar = true
		}
	}
	// No hard zero. D & D̄ = 0 regardless of X elsewhere.
	if hasD && hasDbar {
		return Zero
	}
	if anyX {
		return X
	}
	switch {
	case hasD:
		return D
	case hasDbar:
		return DBar
	}
	return One
}

// Or folds the five-valued disjunction over its arguments.
func Or(vs ...Value) Value {
	anyX := false
	hasD, hasDbar := false, false
	for _, v := range vs {
		switch v {
		case One:
			return One
		case X:
			anyX = true
		case D:
			hasD = true
		case DBar:
			hasDbar = true
		}
	}
	if hasD && hasDbar {
		return One // D | D̄ = 1
	}
	if anyX {
		return X
	}
	switch {
	case hasD:
		return D
	case hasDbar:
		return DBar
	}
	return Zero
}

// Xor folds the five-valued exclusive-or over its arguments.
func Xor(vs ...Value) Value {
	base := false     // accumulated constant part
	symbolic := false // parity of symbol occurrences
	for _, v := range vs {
		switch v {
		case X:
			return X
		case One:
			base = !base
		case D:
			symbolic = !symbolic
		case DBar:
			symbolic = !symbolic
			base = !base
		}
	}
	if !symbolic {
		if base {
			return One
		}
		return Zero
	}
	if base {
		return DBar
	}
	return D
}

// EvalGate evaluates one gate in the five-valued domain.
func EvalGate(kind netlist.Kind, in []Value) Value {
	switch kind {
	case netlist.Const0:
		return Zero
	case netlist.Const1:
		return One
	case netlist.Not:
		return Not(in[0])
	case netlist.Buf:
		return in[0]
	case netlist.And:
		return And(in...)
	case netlist.Nand:
		return Not(And(in...))
	case netlist.Or:
		return Or(in...)
	case netlist.Nor:
		return Not(Or(in...))
	case netlist.Xor:
		return Xor(in...)
	case netlist.Xnor:
		return Not(Xor(in...))
	}
	panic("sim: EvalGate on " + kind.String())
}

// EvalLut evaluates a k-input truth-table cell in the five-valued domain.
// The result is fully precise: the symbol is expanded both ways (D=0 and
// D=1), the unknown inputs are enumerated exhaustively (at most 2^6 rows),
// and the two three-valued results are recombined — so a LUT simulates at
// least as precisely as any gate network computing the same function.
func EvalLut(mask uint64, in []Value) Value {
	eval3 := func(dv Value) Value {
		row, xmask := uint(0), uint(0)
		for i, v := range in {
			switch v {
			case D:
				v = dv
			case DBar:
				v = Not(dv)
			}
			switch v {
			case One:
				row |= 1 << uint(i)
			case X:
				xmask |= 1 << uint(i)
			}
		}
		out0, out1 := false, false
		for sub := xmask; ; sub = (sub - 1) & xmask {
			if mask>>uint(row|sub)&1 == 1 {
				out1 = true
			} else {
				out0 = true
			}
			if sub == 0 {
				break
			}
		}
		switch {
		case out0 && out1:
			return X
		case out1:
			return One
		}
		return Zero
	}
	v0, v1 := eval3(Zero), eval3(One)
	switch {
	case v0 == X || v1 == X:
		return X
	case v0 == v1:
		return v0
	case v0 == Zero:
		return D // output tracks the symbol
	}
	return DBar // output tracks the complemented symbol
}

// Run evaluates the combinational logic of nl with the signals in assign
// forced to the given values. Assignments may target ANY node, not just
// boundary signals: an assigned internal node is cut loose from its own
// logic and treated as a free input, which is how the paper's word
// propagation simulates the "local netlist" around a word (Section
// II-C.1). Unassigned boundary signals are X. The returned slice is indexed
// by node ID.
func Run(nl *netlist.Netlist, assign map[netlist.ID]Value) []Value {
	vals := make([]Value, nl.Len())
	var buf []Value
	for _, id := range nl.TopoOrder() {
		if v, ok := assign[id]; ok {
			vals[id] = v
			continue
		}
		node := nl.Node(id)
		switch {
		case node.Kind.IsConeInput():
			vals[id] = X
		default:
			buf = buf[:0]
			for _, f := range node.Fanin {
				buf = append(buf, vals[f])
			}
			if node.Kind == netlist.Lut {
				vals[id] = EvalLut(node.Mask, buf)
			} else {
				vals[id] = EvalGate(node.Kind, buf)
			}
		}
	}
	return vals
}
