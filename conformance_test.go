package netlistre

// Ground-truth conformance smoke (the full matrix runs under
// cmd/revcheck / `make conformance`): two articles scored against their
// generator labels at two worker counts, plus the serialization
// round-trip fingerprint check over every labeled article.

import (
	"bytes"
	"reflect"
	"testing"
)

// TestConformanceSmoke scores usb and evoter at workers=1 and workers=4:
// the scorecards must be identical across worker counts and at the seed
// quality (both articles score perfectly at the seed).
func TestConformanceSmoke(t *testing.T) {
	for _, article := range []string{"usb", "evoter"} {
		nl, lab, err := LabeledTestArticle(article)
		if err != nil {
			t.Fatal(err)
		}
		var results []*ConformanceResult
		for _, workerCount := range []int{1, 4} {
			opt := Options{Workers: workerCount}
			opt.Overlap.Sliceable = true
			rep := Analyze(nl, opt)
			results = append(results, ScoreReport(rep, lab, ConformanceOptions{}))
		}
		if !reflect.DeepEqual(results[0], results[1]) {
			t.Errorf("%s: scorecard differs between workers=1 and workers=4:\n%+v\n%+v",
				article, results[0], results[1])
		}
		res := results[0]
		if res.MacroF1 < 1 {
			t.Errorf("%s: macro F1 = %v, want 1 at the seed", article, res.MacroF1)
		}
		for _, c := range res.Classes {
			if c.F1 < 1 {
				t.Errorf("%s: class %s F1 = %v, want 1 at the seed (%+v)", article, c.Class, c.F1, c)
			}
		}
		if res.Words.Recall < 1 {
			t.Errorf("%s: word recall = %v, want 1 at the seed", article, res.Words.Recall)
		}
	}
}

// TestArticleSerializationFingerprints: every labeled article, written as
// Verilog and as BLIF and read back, must hash to the same canonical
// fingerprint from both formats — BLIF resolves nets in a different order
// and lowers gates to covers, so agreement means both parsers reconstruct
// the same structure.
func TestArticleSerializationFingerprints(t *testing.T) {
	for _, article := range LabeledTestArticleNames() {
		nl, _, err := LabeledTestArticle(article)
		if err != nil {
			t.Fatal(err)
		}
		var vbuf, bbuf bytes.Buffer
		if err := nl.WriteVerilog(&vbuf); err != nil {
			t.Fatalf("%s: WriteVerilog: %v", article, err)
		}
		if err := nl.WriteBLIF(&bbuf); err != nil {
			t.Fatalf("%s: WriteBLIF: %v", article, err)
		}
		fromV, err := ReadVerilog(&vbuf)
		if err != nil {
			t.Fatalf("%s: ReadVerilog: %v", article, err)
		}
		fromB, err := ReadBLIF(&bbuf)
		if err != nil {
			t.Fatalf("%s: ReadBLIF: %v", article, err)
		}
		if vfp, bfp := fromV.Fingerprint(), fromB.Fingerprint(); vfp != bfp {
			t.Errorf("%s: verilog round-trip %s != blif round-trip %s", article, vfp[:16], bfp[:16])
		}
	}
}
