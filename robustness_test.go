package netlistre

// Robustness tests for the budgeted/cancellable analysis path: canceled
// contexts must yield deterministic partial reports, timeouts must not
// leak goroutines, a panicking analyst pass must not take down the rest
// of the portfolio, malformed netlists must be rejected up front, and
// the report writers must propagate sink errors from every write.

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestAnalyzeContextAlreadyCanceledDeterministic(t *testing.T) {
	nl, err := TestArticle("usb")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	render := func() string {
		rep := AnalyzeContext(ctx, nl, Options{})
		if !rep.Degraded {
			t.Fatal("canceled context must produce a degraded report")
		}
		if rep.ValidationErr != nil {
			t.Fatalf("unexpected validation error: %v", rep.ValidationErr)
		}
		for _, st := range rep.Trace {
			if st.Status != StageCanceled {
				t.Errorf("stage %s status = %v, want canceled", st.Name, st.Status)
			}
		}
		if len(rep.All) != 0 || len(rep.Resolved) != 0 {
			t.Errorf("pre-canceled run produced modules: all=%d resolved=%d",
				len(rep.All), len(rep.Resolved))
		}
		var buf bytes.Buffer
		if err := WriteReport(&buf, rep); err != nil {
			t.Fatal(err)
		}
		return normalizeDurations(buf.String())
	}

	first := render()
	second := render()
	if first != second {
		t.Errorf("canceled-context report not deterministic:\n--- first ---\n%s\n--- second ---\n%s",
			first, second)
	}
	if !strings.Contains(first, "DEGRADED") {
		t.Errorf("degraded report does not say so:\n%s", first)
	}
}

func TestAnalyzeTimeoutDegradedNoGoroutineLeak(t *testing.T) {
	nl := BigSoC()
	before := runtime.NumGoroutine()

	rep := Analyze(nl, Options{Timeout: time.Millisecond})
	if !rep.Degraded {
		t.Error("a 1ms budget on BigSoC should produce a degraded report")
	}
	sawBudgetStatus := false
	for _, st := range rep.Trace {
		switch st.Status {
		case StageOK:
		case StageTimedOut, StageCanceled:
			sawBudgetStatus = true
		default:
			t.Errorf("stage %s unexpected status %v (%s)", st.Name, st.Status, st.Err)
		}
	}
	if !sawBudgetStatus {
		t.Error("no stage was marked timed-out or canceled")
	}
	if rep.CountsBefore == nil || rep.CountsAfter == nil {
		t.Error("counts maps must be non-nil in degraded reports")
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, rep); err != nil {
		t.Fatalf("degraded report failed to render: %v", err)
	}
	if !strings.Contains(buf.String(), "DEGRADED") {
		t.Error("rendered report does not mention degradation")
	}
	if err := WriteJSONReport(&buf, rep); err != nil {
		t.Fatalf("degraded JSON report failed to render: %v", err)
	}

	// The scheduler must not leave stage goroutines behind after Analyze
	// returns. NumGoroutine is noisy (GC workers, test runner), so poll
	// with a deadline instead of requiring an instant exact match.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutine leak after timed-out Analyze: before=%d after=%d",
				before, runtime.NumGoroutine())
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestExtraPassPanicIsolated(t *testing.T) {
	nl, err := TestArticle("usb")
	if err != nil {
		t.Fatal(err)
	}
	base := Analyze(nl, Options{})

	opt := Options{}
	var ranFirst bool
	opt.ExtraPasses = append(opt.ExtraPasses,
		func(*Netlist) []*Module { ranFirst = true; return nil },
		func(*Netlist) []*Module { panic("injected pass failure") },
	)
	rep := Analyze(nl, opt)

	if !ranFirst {
		t.Error("pass before the panicking one did not run")
	}
	if !rep.Degraded {
		t.Error("panicking extra pass must degrade the report")
	}
	for _, st := range rep.Trace {
		switch st.Name {
		case "extra":
			if st.Status != StageFailed {
				t.Errorf("extra stage status = %v, want failed", st.Status)
			}
			if !strings.Contains(st.Err, "injected pass failure") {
				t.Errorf("extra stage error %q does not carry the panic value", st.Err)
			}
			if !strings.Contains(st.Err, "goroutine") {
				t.Errorf("extra stage error does not carry a stack trace: %q", st.Err)
			}
		default:
			if st.Status != StageOK {
				t.Errorf("stage %s status = %v, want ok", st.Name, st.Status)
			}
		}
	}
	// Every other stage's modules survive: the report matches a clean run.
	if len(rep.All) != len(base.All) {
		t.Errorf("module set changed: %d modules, want %d", len(rep.All), len(base.All))
	}
	if len(rep.Resolved) != len(base.Resolved) || rep.CoverageAfter != base.CoverageAfter {
		t.Errorf("resolution changed: %d modules %d covered, want %d modules %d covered",
			len(rep.Resolved), rep.CoverageAfter, len(base.Resolved), base.CoverageAfter)
	}
}

func TestAnalyzeRejectsInvalidNetlist(t *testing.T) {
	nl := NewNetlist("bad")
	a := nl.AddInput("a")
	g := nl.AddGate(And, a, a)
	nl.Node(g).Fanin[1] = g // combinational self-loop

	rep := Analyze(nl, Options{})
	if rep.ValidationErr == nil {
		t.Fatal("expected a validation error")
	}
	if !rep.Degraded {
		t.Error("validation failure must mark the report degraded")
	}
	if len(rep.Trace) != 0 || len(rep.All) != 0 {
		t.Error("no analysis may run on an invalid netlist")
	}
	if !strings.Contains(rep.ValidationErr.Error(), "combinational cycle") {
		t.Errorf("validation error = %v, want combinational cycle", rep.ValidationErr)
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "input validation FAILED") {
		t.Errorf("report does not surface the validation failure:\n%s", buf.String())
	}
	var jbuf bytes.Buffer
	if err := WriteJSONReport(&jbuf, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jbuf.String(), `"validation_error"`) {
		t.Error("JSON report omits validation_error")
	}
}

// errSinkFull is the error injected by failingWriter.
var errSinkFull = errors.New("sink full")

// failingWriter accepts `remaining` bytes, then fails every write.
type failingWriter struct{ remaining int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.remaining <= 0 {
		return 0, errSinkFull
	}
	if len(p) > w.remaining {
		n := w.remaining
		w.remaining = 0
		return n, errSinkFull
	}
	w.remaining -= len(p)
	return len(p), nil
}

func TestWriteReportPropagatesWriteErrors(t *testing.T) {
	nl, err := TestArticle("usb")
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(nl, Options{})

	var full bytes.Buffer
	if err := WriteReport(&full, rep); err != nil {
		t.Fatal(err)
	}
	// A sink that fails at any offset of the output must surface the
	// error, no matter which internal write hits it.
	for cut := 0; cut < full.Len(); cut++ {
		if err := WriteReport(&failingWriter{remaining: cut}, rep); !errors.Is(err, errSinkFull) {
			t.Fatalf("WriteReport into %d-byte sink: err = %v, want errSinkFull", cut, err)
		}
	}
	if err := WriteReport(&failingWriter{remaining: full.Len()}, rep); err != nil {
		t.Errorf("WriteReport into exactly-sized sink: %v", err)
	}

	var trace bytes.Buffer
	if err := WriteTrace(&trace, rep); err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < trace.Len(); cut++ {
		if err := WriteTrace(&failingWriter{remaining: cut}, rep); !errors.Is(err, errSinkFull) {
			t.Fatalf("WriteTrace into %d-byte sink: err = %v, want errSinkFull", cut, err)
		}
	}
}

func TestAnalyzeStageTimeoutDegrades(t *testing.T) {
	nl := BigSoC()
	rep := Analyze(nl, Options{StageTimeout: time.Millisecond, SkipModMatch: true})
	if !rep.Degraded {
		t.Skip("every stage beat a 1ms budget on this machine")
	}
	for _, st := range rep.Trace {
		if st.Status != StageOK && st.Status != StageTimedOut {
			t.Errorf("stage %s status = %v, want ok or timed-out", st.Name, st.Status)
		}
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "timed-out") {
		t.Error("trace does not mark the timed-out stage")
	}
}
