GO ?= go

.PHONY: build test test-short test-race bench bench-stagecache bench-match conformance decompile-smoke diff-gate fuzz vet load-smoke resume-smoke session-smoke chaos-smoke coverage ci

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

test-short: build
	$(GO) test -short ./...

# Race-checks the parallel portfolio scheduler and every other goroutine
# on the full suite (including the BigSoC TestAnalyzeParallelRace, which
# -short would skip). Run on every PR.
test-race: build
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x ./...

# Cold-vs-warm stage-store comparison on the BigSoC case study: analyzes
# the SoC once from scratch, then again replaying every stage artifact,
# and writes the timings (and the >= 5x speedup assertion) to
# BENCH_stagecache.json.
bench-stagecache: build
	BENCH_STAGECACHE_OUT=BENCH_stagecache.json $(GO) test -run TestStageCacheBench -count 1 -v .

# Ground-truth conformance matrix: every labeled article analyzed at two
# worker counts, scored against the generator labels, pushed through the
# metamorphic mutations, and gated on testdata/conformance_baseline.json.
# Deterministic: two runs write identical BENCH_conformance.json.
# Re-record the baseline after an intentional quality change with
#   go run ./cmd/revcheck -bless
conformance: build
	$(GO) run ./cmd/revcheck

# Decompilation gate: every labeled article lowered to word-level Verilog
# at workers 1 and 4, byte-identical across counts, round-trip equivalence
# verified, and per-article residual gate/latch counts gated against
# testdata/decompile_baseline.json. Re-record after an intentional
# coverage change with
#   go run ./cmd/revcheck -decompile -bless
decompile-smoke: build
	$(GO) run ./cmd/revcheck -decompile

# Differential gate: each labeled golden/trojan article pair (gate- and
# LUT-mapped) diffed with the multi-pass matcher; the added set must equal
# the injected trojan gate set exactly, with a clean self-diff per golden.
diff-gate: build
	$(GO) run ./cmd/revcheck -diff

# Cut-classification microbenchmark: replays BigSoC's shrunk cut-function
# stream through the old per-entry permutation search and the new memoized
# canonical-index classifier, asserts the >= 3x speedup and the ratio gate
# against testdata/bench_match_baseline.json, and writes BENCH_match.json.
bench-match: build
	BENCH_MATCH_OUT=BENCH_match.json $(GO) test -run TestMatchBench -count 1 -v .

# Short fuzz sweep of the netlist parsers and the JSON report decoder
# (seeds always run under `make test`; this explores beyond them).
fuzz:
	$(GO) test ./internal/netlist -fuzz FuzzReadVerilog -fuzztime 30s
	$(GO) test ./internal/netlist -fuzz FuzzReadBLIF -fuzztime 30s
	$(GO) test . -run FuzzReadJSONReport -fuzz FuzzReadJSONReport -fuzztime 30s
	$(GO) test ./internal/truth -fuzz FuzzCanon -fuzztime 30s
	$(GO) test ./internal/rtl -fuzz FuzzEmitRTL -fuzztime 30s
	$(GO) test ./internal/server -run 'Fuzz' -fuzz FuzzSessionRequest -fuzztime 30s
	$(GO) test ./internal/server -run 'Fuzz' -fuzz FuzzDiffRequest -fuzztime 30s

vet:
	$(GO) vet ./...

# Coverage: whole-repo total over the short suite, plus the conformance
# oracle's own coverage, which is gated at 80% (the scorer is the part of
# the harness that must not rot silently).
coverage: build
	$(GO) test -short -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | tail -1
	$(GO) test -coverprofile=coverage_oracle.out ./internal/oracle
	@total=$$($(GO) tool cover -func=coverage_oracle.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	echo "internal/oracle coverage: $$total%"; \
	awk -v t="$$total" 'BEGIN { if (t+0 < 80) { print "internal/oracle coverage below the 80% gate"; exit 1 } }'

# Load-smokes the revand service under the race detector: ~50 concurrent
# mixed requests (cache-hot repeats, cold uploads, async jobs, metrics
# scrapes), a clean drain, and a goroutine-leak check — plus the daemon's
# real SIGTERM shutdown path.
load-smoke:
	$(GO) test -race -run 'TestLoadSmoke' -count 1 ./internal/server
	$(GO) test -race -run 'TestRunServesAndDrainsOnSIGTERM' -count 1 ./cmd/revand

# Race-checks the stage store's resume path: warm-run determinism at two
# worker counts plus the timeout-then-resume round trip.
resume-smoke:
	$(GO) test -race -run 'TestStageCacheWarmDeterminism|TestStageCacheResumeAfterStageTimeout' -count 1 .

# Drives a scripted interactive session end to end against a real revand
# under the race detector: analyze an article as a job, bind a session,
# list and expand blocks, run a cone query, re-run a stage from the warm
# stage store (all provenance must read "cached"), upload the trojaned
# twin as a second revision, diff it, then drain on SIGTERM with exit 0.
session-smoke:
	$(GO) test -race -run 'TestSessionSmoke' -count 1 ./cmd/revand

# Fleet chaos smoke: a coordinator plus three peer workers under the race
# detector, with seeded fault injection on ~30% of fleet requests
# (refused connections, 5xx, latency, truncated bodies) and one peer
# killed mid-job. Asserts the merged report is byte-identical to a
# healthy single-process run, the dead-fleet path falls back locally to
# the same bytes, and no goroutines leak.
chaos-smoke:
	$(GO) test -race -run 'TestFleetChaosSmoke|TestFleetAllPeersDownFallsBackLocal' -count 1 ./internal/server

# Mirrors .github/workflows/ci.yml: full build + vet + tests, a short-mode
# race pass, the revand load smoke, the scripted session smoke, the fleet
# chaos smoke, the conformance matrix, the decompilation gate, the
# differential trojan gate, the matching microbenchmark, the coverage
# gate, and 30-second fuzz smokes of the parsers, the report decoder, the
# canonicalizer, the RTL round trip, and the session/diff request
# decoders.
ci: build vet
	$(GO) test ./...
	$(GO) test -short -race ./...
	$(GO) test -race -run 'TestLoadSmoke' -count 1 ./internal/server
	$(GO) test -race -run 'TestRunServesAndDrainsOnSIGTERM' -count 1 ./cmd/revand
	$(GO) test -race -run 'TestStageCacheWarmDeterminism|TestStageCacheResumeAfterStageTimeout' -count 1 .
	$(MAKE) session-smoke
	$(MAKE) chaos-smoke
	$(MAKE) conformance
	$(MAKE) decompile-smoke
	$(MAKE) diff-gate
	$(MAKE) bench-match
	$(MAKE) coverage
	$(GO) test ./internal/netlist -fuzz FuzzReadVerilog -fuzztime 30s
	$(GO) test ./internal/netlist -fuzz FuzzReadBLIF -fuzztime 30s
	$(GO) test . -run FuzzReadJSONReport -fuzz FuzzReadJSONReport -fuzztime 30s
	$(GO) test ./internal/truth -fuzz FuzzCanon -fuzztime 30s
	$(GO) test ./internal/rtl -fuzz FuzzEmitRTL -fuzztime 30s
	$(GO) test ./internal/server -run 'Fuzz' -fuzz FuzzSessionRequest -fuzztime 30s
	$(GO) test ./internal/server -run 'Fuzz' -fuzz FuzzDiffRequest -fuzztime 30s
