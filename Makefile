GO ?= go

.PHONY: build test test-short test-race bench bench-stagecache fuzz vet load-smoke resume-smoke ci

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

test-short: build
	$(GO) test -short ./...

# Race-checks the parallel portfolio scheduler and every other goroutine
# on the full suite (including the BigSoC TestAnalyzeParallelRace, which
# -short would skip). Run on every PR.
test-race: build
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x ./...

# Cold-vs-warm stage-store comparison on the BigSoC case study: analyzes
# the SoC once from scratch, then again replaying every stage artifact,
# and writes the timings (and the >= 5x speedup assertion) to
# BENCH_stagecache.json.
bench-stagecache: build
	BENCH_STAGECACHE_OUT=BENCH_stagecache.json $(GO) test -run TestStageCacheBench -count 1 -v .

# Short fuzz sweep of the netlist parsers (seeds always run under
# `make test`; this explores beyond them).
fuzz:
	$(GO) test ./internal/netlist -fuzz FuzzReadVerilog -fuzztime 30s
	$(GO) test ./internal/netlist -fuzz FuzzReadBLIF -fuzztime 30s

vet:
	$(GO) vet ./...

# Load-smokes the revand service under the race detector: ~50 concurrent
# mixed requests (cache-hot repeats, cold uploads, async jobs, metrics
# scrapes), a clean drain, and a goroutine-leak check — plus the daemon's
# real SIGTERM shutdown path.
load-smoke:
	$(GO) test -race -run 'TestLoadSmoke' -count 1 ./internal/server
	$(GO) test -race -run 'TestRunServesAndDrainsOnSIGTERM' -count 1 ./cmd/revand

# Race-checks the stage store's resume path: warm-run determinism at two
# worker counts plus the timeout-then-resume round trip.
resume-smoke:
	$(GO) test -race -run 'TestStageCacheWarmDeterminism|TestStageCacheResumeAfterStageTimeout' -count 1 .

# Mirrors .github/workflows/ci.yml: full build + vet + tests, a short-mode
# race pass, the revand load smoke, and a 30-second fuzz smoke of both
# netlist parsers.
ci: build vet
	$(GO) test ./...
	$(GO) test -short -race ./...
	$(GO) test -race -run 'TestLoadSmoke' -count 1 ./internal/server
	$(GO) test -race -run 'TestRunServesAndDrainsOnSIGTERM' -count 1 ./cmd/revand
	$(GO) test -race -run 'TestStageCacheWarmDeterminism|TestStageCacheResumeAfterStageTimeout' -count 1 .
	$(GO) test ./internal/netlist -fuzz FuzzReadVerilog -fuzztime 30s
	$(GO) test ./internal/netlist -fuzz FuzzReadBLIF -fuzztime 30s
