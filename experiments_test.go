package netlistre

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"netlistre/internal/core"
	"netlistre/internal/gen"
	"netlistre/internal/module"
)

// TestAnalyzeRowOnSmallestArticle exercises the Table 3 pipeline on the
// cheapest article so the experiment plumbing is covered by plain tests,
// not only by benchmarks.
func TestAnalyzeRowOnSmallestArticle(t *testing.T) {
	nl, err := gen.Article("evoter")
	if err != nil {
		t.Fatal(err)
	}
	row := analyzeRow("evoter", nl, core.Options{SkipModMatch: true})
	if row.CoverageAfter <= 0.30 || row.CoverageAfter > 1 {
		t.Errorf("coverage = %v", row.CoverageAfter)
	}
	if row.CoverageAfter > row.CoverageBefore {
		t.Error("resolution increased coverage")
	}
	if row.Before[module.Counter] != 4 {
		t.Errorf("evoter counters = %d, want 4", row.Before[module.Counter])
	}
}

func TestTableRenderers(t *testing.T) {
	var buf bytes.Buffer
	WriteTable2(&buf)
	if !strings.Contains(buf.String(), "mips16") {
		t.Error("Table 2 missing articles")
	}

	rows3 := []Table3Row{{
		Name: "fake", Gates: 100, Latches: 10,
		Before:         map[module.Type]int{module.Adder: 2},
		After:          map[module.Type]int{module.Adder: 1},
		CoverageBefore: 0.5, CoverageAfter: 0.4,
		Runtime: 10 * time.Millisecond,
	}}
	buf.Reset()
	WriteTable3(&buf, rows3)
	if !strings.Contains(buf.String(), "fake") || !strings.Contains(buf.String(), "50.0%") {
		t.Errorf("Table 3 render:\n%s", buf.String())
	}

	buf.Reset()
	WriteTable4(&buf, []Table4Row{{Name: "fake", BasicCoverage: 0.5, SliceableCoverage: 0.6,
		BasicModules: 3, SliceableModules: 4}})
	if !strings.Contains(buf.String(), "60.0%") {
		t.Errorf("Table 4 render:\n%s", buf.String())
	}

	buf.Reset()
	WriteTable5(&buf, Table5Result{RawGates: 200, SimplifiedGates: 100,
		Cores: []Table5Row{{Name: "c0", Latches: 5, Elements: 50}}, Unowned: 3, UnownedFraction: 0.03})
	if !strings.Contains(buf.String(), "50% reduction") {
		t.Errorf("Table 5 render:\n%s", buf.String())
	}

	buf.Reset()
	WriteTable6(&buf, []Table6Row{{Name: "c0", Gates: 80, Latches: 20, Modules: 4,
		Coverage: 0.75, Runtime: time.Millisecond}})
	if !strings.Contains(buf.String(), "75.0%") {
		t.Errorf("Table 6 render:\n%s", buf.String())
	}

	buf.Reset()
	WriteTable7(&buf, Table7()) // cheap: just builds netlists
	if !strings.Contains(buf.String(), "evoter") {
		t.Error("Table 7 render missing designs")
	}

	buf.Reset()
	WriteTable8(&buf, []Table8Row{
		{Name: "clean", Before: map[module.Type]int{module.Counter: 1}, Coverage: 0.5},
		{Name: "troj", Before: map[module.Type]int{module.Counter: 2}, Coverage: 0.5},
	})
	if !strings.Contains(buf.String(), "troj") {
		t.Error("Table 8 render missing rows")
	}
}

func TestTrojanDeltaHelper(t *testing.T) {
	clean := Table8Row{Before: map[module.Type]int{module.Counter: 1, module.Mux: 2}}
	troj := Table8Row{Before: map[module.Type]int{module.Counter: 2, module.Mux: 2, module.Gating: 1}}
	d := TrojanDelta(clean, troj)
	if d[module.Counter] != 1 || d[module.Gating] != 1 {
		t.Errorf("delta = %v", d)
	}
	if _, present := d[module.Mux]; present {
		t.Error("unchanged type present in delta")
	}
}

func TestVGACoreAndFramebufferPublic(t *testing.T) {
	nl, px := VGACore(8, 4)
	if len(px) != 4 {
		t.Fatalf("pixels = %d", len(px))
	}
	mods := FindFramebufferRead(nl)
	if len(mods) != 1 {
		t.Fatalf("framebuffer modules = %d", len(mods))
	}
}

func TestRecordTracePublic(t *testing.T) {
	nl := buildSmallDesign()
	var stimuli []map[ID]bool
	for t := 0; t < 8; t++ {
		inp := map[ID]bool{}
		for _, in := range nl.Inputs() {
			inp[in] = t%2 == 0
		}
		stimuli = append(stimuli, inp)
	}
	tr := RecordTrace(nl, stimuli)
	if tr.Cycles() != 8 {
		t.Errorf("cycles = %d", tr.Cycles())
	}
}

func TestAbstractNetlistAndDOT(t *testing.T) {
	// An adder feeding a register: the abstracted netlist must contain an
	// adder -> register edge and I/O edges, and render as valid-looking DOT.
	nl := NewNetlist("abs")
	var a, b []ID
	for i := 0; i < 4; i++ {
		a = append(a, nl.AddInput("a"+string(rune('0'+i))))
		b = append(b, nl.AddInput("b"+string(rune('0'+i))))
	}
	carry := nl.AddConst(false)
	var sum []ID
	for i := 0; i < 4; i++ {
		sum = append(sum, nl.AddGate(Xor, a[i], b[i], carry))
		carry = nl.AddGate(Or,
			nl.AddGate(And, a[i], b[i]),
			nl.AddGate(And, b[i], carry),
			nl.AddGate(And, carry, a[i]))
	}
	we := nl.AddInput("we")
	nwe := nl.AddGate(Not, we)
	for i := 0; i < 4; i++ {
		l := nl.AddLatch(nl.AddConst(false))
		nl.SetLatchD(l, nl.AddGate(Or,
			nl.AddGate(And, we, sum[i]),
			nl.AddGate(And, nwe, ID(l))))
		nl.MarkOutput("q"+string(rune('0'+i)), l)
	}

	rep := Analyze(nl, Options{SkipModMatch: true})
	var adderIdx, regIdx = -1, -1
	for i, m := range rep.Resolved {
		switch m.Type {
		case TypeAdder:
			adderIdx = i
		case TypeMultibitRegister:
			regIdx = i
		}
	}
	if adderIdx == -1 || regIdx == -1 {
		t.Fatalf("adder/register not resolved: %v", rep.CountsAfter)
	}
	edges := AbstractNetlist(nl, rep.Resolved)
	found := false
	ioIn, ioOut := false, false
	for _, e := range edges {
		if e.From == adderIdx && e.To == regIdx {
			found = true
		}
		if e.From == -1 {
			ioIn = true
		}
		if e.To == -1 {
			ioOut = true
		}
	}
	if !found {
		t.Errorf("no adder->register edge in %v", edges)
	}
	if !ioIn || !ioOut {
		t.Errorf("I/O edges missing (in=%v out=%v)", ioIn, ioOut)
	}

	var buf bytes.Buffer
	if err := WriteAbstractDOT(&buf, nl, rep.Resolved); err != nil {
		t.Fatal(err)
	}
	dot := buf.String()
	for _, want := range []string{"digraph", "adder", "->", "pins", "}"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestJSONReport(t *testing.T) {
	nl := buildSmallDesign()
	rep := Analyze(nl, Options{SkipModMatch: true})
	var buf bytes.Buffer
	if err := WriteJSONReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var decoded JSONReport
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded.Design != "small" || decoded.Gates != nl.Stats().Gates {
		t.Errorf("decoded = %+v", decoded)
	}
	if decoded.Coverage.AfterFraction <= 0 {
		t.Error("coverage missing")
	}
	foundAdder := false
	for _, m := range decoded.Modules {
		if m.Type == "adder" {
			foundAdder = true
			if len(m.Ports["sum"]) != 4 {
				t.Errorf("adder sum port = %v", m.Ports["sum"])
			}
		}
	}
	if !foundAdder {
		t.Error("adder missing from JSON modules")
	}
}

// TestCoverageShapeRegression cements the paper-shape claims in the plain
// test suite (the full portfolio variants live in the benchmarks): every
// article lands in its documented coverage band, resolution never gains
// coverage, and the resolved set is disjoint.
func TestCoverageShapeRegression(t *testing.T) {
	bands := map[string][2]float64{
		"mips16":  {0.85, 0.97},
		"riscfpu": {0.80, 0.95},
		"router":  {0.78, 0.93},
		"oc8051":  {0.52, 0.70},
		"aemb":    {0.58, 0.78},
		"msp430":  {0.48, 0.66},
		"usb":     {0.45, 0.64},
		"evoter":  {0.40, 0.58},
	}
	opt := Options{SkipModMatch: true} // QBF matching is benchmarked separately
	opt.Overlap.Sliceable = true
	var covs []float64
	order := TestArticleNames()
	for _, name := range order {
		nl, err := TestArticle(name)
		if err != nil {
			t.Fatal(err)
		}
		rep := Analyze(nl, opt)
		cov := rep.CoverageFraction()
		covs = append(covs, cov)
		band := bands[name]
		if cov < band[0] || cov > band[1] {
			t.Errorf("%s coverage %.3f outside band [%.2f, %.2f]", name, cov, band[0], band[1])
		}
		if rep.CoverageAfter > rep.CoverageBefore {
			t.Errorf("%s: resolution increased coverage", name)
		}
		if _, ok := module.Disjoint(rep.Resolved); !ok {
			t.Errorf("%s: resolved modules overlap", name)
		}
	}
	// Headline shape: mips16 (index 0) leads and evoter (last) trails.
	// Without QBF matching the top two swap within a point, so the check
	// allows a small tolerance; the full-portfolio ordering is asserted by
	// the Table 3 benchmark.
	for i, c := range covs {
		if c > covs[0]+0.02 {
			t.Errorf("%s coverage %.3f well above mips16's %.3f", order[i], c, covs[0])
		}
		if c < covs[len(covs)-1]-0.02 {
			t.Errorf("%s coverage %.3f well below evoter's", order[i], c)
		}
	}
}
