package netlistre_test

import (
	"fmt"
	"sort"

	"netlistre"
)

// Example demonstrates the core loop: build an unstructured netlist, run
// the portfolio, inspect the inferred modules.
func Example() {
	nl := netlistre.NewNetlist("demo")

	// A 4-bit ripple adder, flattened to gates.
	var a, b []netlistre.ID
	for i := 0; i < 4; i++ {
		a = append(a, nl.AddInput(fmt.Sprintf("a%d", i)))
		b = append(b, nl.AddInput(fmt.Sprintf("b%d", i)))
	}
	carry := nl.AddConst(false)
	for i := 0; i < 4; i++ {
		sum := nl.AddGate(netlistre.Xor, a[i], b[i], carry)
		carry = nl.AddGate(netlistre.Or,
			nl.AddGate(netlistre.And, a[i], b[i]),
			nl.AddGate(netlistre.And, b[i], carry),
			nl.AddGate(netlistre.And, carry, a[i]))
		nl.MarkOutput(fmt.Sprintf("s%d", i), sum)
	}
	nl.MarkOutput("cout", carry)

	rep := netlistre.Analyze(nl, netlistre.Options{SkipModMatch: true})

	var names []string
	for _, m := range rep.Resolved {
		names = append(names, m.Name)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Println(n)
	}
	// Output:
	// adder[4]
}

// ExampleWriteAbstractDOT renders the analyst-facing abstracted netlist.
func ExampleWriteAbstractDOT() {
	nl := netlistre.NewNetlist("tiny")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	x := nl.AddGate(netlistre.Xor, a, b)
	nl.MarkOutput("y", x)
	rep := netlistre.Analyze(nl, netlistre.Options{SkipModMatch: true})
	fmt.Println(len(rep.Resolved), "modules on a single gate")
	// Output:
	// 0 modules on a single gate
}
