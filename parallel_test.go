package netlistre

// Determinism and race coverage for the parallel portfolio scheduler:
// the report must be bit-identical for any worker count, and the
// concurrent stages must be clean under the race detector.

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"

	"netlistre/internal/gen"
	"netlistre/internal/module"
)

// serializeReport renders every analysis outcome that must not depend on
// scheduling: module names, types, element sets, ports, words, counts and
// coverage. Timings (Runtime, Trace) are deliberately excluded.
func serializeReport(rep *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "design %s total %d before %d after %d optimal %v err %v\n",
		rep.Netlist.Name, rep.TotalElements, rep.CoverageBefore,
		rep.CoverageAfter, rep.OverlapOptimal, rep.OverlapErr)
	writeMods := func(label string, mods []*Module) {
		fmt.Fprintf(&b, "%s %d\n", label, len(mods))
		for _, m := range mods {
			fmt.Fprintf(&b, "  %s type %v width %d elements %v\n",
				m.Name, m.Type, m.Width, m.Elements)
			var ports []string
			for name := range m.Ports {
				ports = append(ports, name)
			}
			sort.Strings(ports)
			for _, p := range ports {
				fmt.Fprintf(&b, "    port %s %v\n", p, m.Ports[p])
			}
			var attrs []string
			for k := range m.Attr {
				attrs = append(attrs, k)
			}
			sort.Strings(attrs)
			for _, k := range attrs {
				fmt.Fprintf(&b, "    attr %s=%s\n", k, m.Attr[k])
			}
		}
	}
	writeMods("all", rep.All)
	writeMods("resolved", rep.Resolved)
	writeMods("candidates", rep.Candidates)
	fmt.Fprintf(&b, "words %d\n", len(rep.Words))
	for _, w := range rep.Words {
		fmt.Fprintf(&b, "  %v\n", w.Bits)
	}
	var types []module.Type
	for ty := range rep.CountsBefore {
		types = append(types, ty)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	for _, ty := range types {
		fmt.Fprintf(&b, "count %v %d/%d\n", ty, rep.CountsBefore[ty], rep.CountsAfter[ty])
	}
	return b.String()
}

// TestAnalyzeDeterminism runs the portfolio serially (Workers: 1) and
// with a wide worker pool (Workers: 8) on three articles and asserts the
// serialized reports are byte-identical.
func TestAnalyzeDeterminism(t *testing.T) {
	for _, name := range []string{"mips16", "router", "oc8051"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			nl, err := gen.Article(name)
			if err != nil {
				t.Fatal(err)
			}
			opt := Options{KeepCandidates: true}
			opt.Overlap.Sliceable = true

			serialOpt := opt
			serialOpt.Workers = 1
			serial := serializeReport(Analyze(nl, serialOpt))

			parOpt := opt
			parOpt.Workers = 8
			parallel := serializeReport(Analyze(nl, parOpt))

			if serial != parallel {
				t.Errorf("Workers=1 and Workers=8 reports differ:\n--- serial ---\n%s\n--- parallel ---\n%s",
					serial, parallel)
			}
		})
	}
}

// TestAnalyzeParallelRace exercises the concurrent scheduler on the
// BigSoC case study so `go test -race ./...` sweeps the new goroutines.
func TestAnalyzeParallelRace(t *testing.T) {
	if testing.Short() {
		t.Skip("BigSoC analysis is slow; skipped in -short mode")
	}
	nl := Simplify(BigSoC()).Netlist
	var mu sync.Mutex
	events := 0
	opt := Options{
		SkipModMatch: true,
		Workers:      runtime.GOMAXPROCS(0),
		Progress: func(ev StageEvent) {
			mu.Lock()
			events++
			mu.Unlock()
		},
	}
	rep := Analyze(nl, opt)
	if len(rep.All) == 0 {
		t.Fatal("BigSoC analysis found no modules")
	}
	if id, ok := module.Disjoint(rep.Resolved); !ok {
		t.Fatalf("resolved modules overlap on element %d", id)
	}
	// Every stage fires a start and a done event.
	if want := 2 * len(rep.Trace); events != want {
		t.Errorf("got %d progress events, want %d", events, want)
	}
}

// TestAnalyzeParallelRaceLut repeats the race sweep on the LUT-mapped
// BigSoC so the concurrent stages also run over Lut nodes (mask-dependent
// grouping, LUT-aware BDD and simulation paths).
func TestAnalyzeParallelRaceLut(t *testing.T) {
	if testing.Short() {
		t.Skip("BigSoC analysis is slow; skipped in -short mode")
	}
	nl := LutMap(BigSoC())
	if err := nl.Check(); err != nil {
		t.Fatalf("LUT-mapped BigSoC invalid: %v", err)
	}
	opt := Options{SkipModMatch: true, Workers: runtime.GOMAXPROCS(0)}
	rep := Analyze(nl, opt)
	if len(rep.All) == 0 {
		t.Fatal("LUT-mapped BigSoC analysis found no modules")
	}
	if id, ok := module.Disjoint(rep.Resolved); !ok {
		t.Fatalf("resolved modules overlap on element %d", id)
	}
}

// TestAnalyzeWorkerSweep cross-checks a few worker counts on one article:
// any budget must yield the identical report.
func TestAnalyzeWorkerSweep(t *testing.T) {
	nl, err := gen.Article("evoter")
	if err != nil {
		t.Fatal(err)
	}
	var want string
	for _, w := range []int{1, 2, 3, 16} {
		opt := Options{Workers: w}
		got := serializeReport(Analyze(nl, opt))
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("Workers=%d report differs from Workers=1", w)
		}
	}
}
