package netlistre

// The paper's end product is "a high-level netlist with components such as
// register files, counters, adders and subtractors". This file renders that
// abstracted netlist: the resolved modules become vertices, connected by
// the signals flowing between them, in Graphviz DOT for the human analyst.

import (
	"fmt"
	"io"
	"sort"

	"netlistre/internal/module"
	"netlistre/internal/netlist"
)

// AbstractEdge is one module-to-module connection in the abstracted
// netlist.
type AbstractEdge struct {
	From, To int // indices into the module list; -1 = primary I/O
	// Signals counts distinct nets carrying the connection.
	Signals int
}

// AbstractNetlist computes the module-level connectivity of a resolved
// module set: an edge m1 -> m2 exists when a signal produced inside m1
// feeds an element of m2.
func AbstractNetlist(nl *Netlist, mods []*Module) []AbstractEdge {
	owner := make(map[netlist.ID]int)
	for i, m := range mods {
		for _, e := range m.Elements {
			owner[e] = i
		}
	}
	type key struct{ from, to int }
	counts := make(map[key]int)
	for i, m := range mods {
		for _, e := range m.Elements {
			for _, fo := range nl.Fanout(e) {
				j, owned := owner[fo]
				switch {
				case !owned:
					// Signal leaves the module into uncovered logic;
					// uncovered logic is not drawn.
				case j != i:
					counts[key{i, j}]++
				}
			}
		}
	}
	// Primary inputs feeding modules.
	for _, in := range nl.Inputs() {
		seen := make(map[int]bool)
		for _, fo := range nl.Fanout(in) {
			if j, owned := owner[fo]; owned && !seen[j] {
				seen[j] = true
				counts[key{-1, j}]++
			}
		}
	}
	// Modules driving primary outputs.
	for _, p := range nl.Outputs() {
		if i, owned := owner[p.Driver]; owned {
			counts[key{i, -1}]++
		}
	}

	var edges []AbstractEdge
	for k, n := range counts {
		edges = append(edges, AbstractEdge{From: k.from, To: k.to, Signals: n})
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].From != edges[b].From {
			return edges[a].From < edges[b].From
		}
		return edges[a].To < edges[b].To
	})
	return edges
}

// WriteAbstractDOT renders the abstracted netlist as a Graphviz digraph.
// Module vertices are labelled with their inferred name and element count;
// primary I/O appears as a single "pins" vertex.
func WriteAbstractDOT(w io.Writer, nl *Netlist, mods []*Module) error {
	edges := AbstractNetlist(nl, mods)
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n", nl.Name); err != nil {
		return err
	}
	shape := func(t module.Type) string {
		switch t {
		case module.RAM, module.MultibitRegister, module.Counter, module.ShiftRegister:
			return "box3d" // stateful
		default:
			return "box"
		}
	}
	usesIO := false
	for _, e := range edges {
		if e.From == -1 || e.To == -1 {
			usesIO = true
		}
	}
	if usesIO {
		fmt.Fprintf(w, "  pins [label=\"chip pins\", shape=oval];\n")
	}
	for i, m := range mods {
		fmt.Fprintf(w, "  m%d [label=\"%s\\n%d elements\", shape=%s];\n",
			i, m.Name, m.Size(), shape(m.Type))
	}
	name := func(i int) string {
		if i == -1 {
			return "pins"
		}
		return fmt.Sprintf("m%d", i)
	}
	for _, e := range edges {
		fmt.Fprintf(w, "  %s -> %s [label=\"%d\"];\n", name(e.From), name(e.To), e.Signals)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
