package netlistre

// This file implements the benchmark harness that regenerates every table
// of the paper's evaluation (Section V). Absolute numbers differ from the
// paper — the test articles are synthetic equivalents (see DESIGN.md) — but
// each table reproduces the paper's qualitative shape: which articles score
// high, how much overlap resolution costs, how the sliceable ILP compares
// to the basic one, how BigSoC partitions, and what the trojans add.

import (
	"fmt"
	"io"
	"sort"
	"time"

	"netlistre/internal/core"
	"netlistre/internal/gen"
	"netlistre/internal/module"
	"netlistre/internal/overlap"
	"netlistre/internal/partition"
	"netlistre/internal/simplify"
)

// reportTypes are the module-type columns of Table 3, in print order.
var reportTypes = []module.Type{
	module.Mux, module.Decoder, module.Demux, module.Adder,
	module.Subtractor, module.ParityTree, module.Counter,
	module.ShiftRegister, module.RAM, module.MultibitRegister,
	module.WordOp, module.Gating, module.PopCount, module.Fused,
}

// Table2Row is one line of the netlist inventory.
type Table2Row struct {
	Name        string
	Description string
	Inputs      int
	Outputs     int
	Gates       int
	Latches     int
}

// Table2 builds the netlist inventory of the eight test articles.
func Table2() []Table2Row {
	var rows []Table2Row
	for _, name := range gen.ArticleNames() {
		nl, err := gen.Article(name)
		if err != nil {
			panic(err)
		}
		s := nl.Stats()
		rows = append(rows, Table2Row{
			Name:        name,
			Description: gen.ArticleDescriptions[name],
			Inputs:      s.Inputs,
			Outputs:     s.Outputs,
			Gates:       s.Gates,
			Latches:     s.Latches,
		})
	}
	return rows
}

// WriteTable2 renders Table 2.
func WriteTable2(w io.Writer) {
	fmt.Fprintf(w, "Table 2: netlists used in experiments\n")
	fmt.Fprintf(w, "%-8s %6s %6s %7s %7s  %s\n", "design", "in", "out", "gates", "latch", "description")
	for _, r := range Table2() {
		fmt.Fprintf(w, "%-8s %6d %6d %7d %7d  %s\n",
			r.Name, r.Inputs, r.Outputs, r.Gates, r.Latches, r.Description)
	}
}

// Table3Row is one article's coverage result. Counts follows reportTypes.
type Table3Row struct {
	Name           string
	Gates, Latches int
	// Before holds module counts before overlap resolution (the paper's
	// white rows), After the counts after resolution (shaded rows).
	Before, After map[module.Type]int
	// CoverageBefore/After are element-coverage fractions.
	CoverageBefore, CoverageAfter float64
	Runtime                       time.Duration
}

// Table3 runs the full portfolio on every article.
func Table3() []Table3Row {
	var rows []Table3Row
	for _, name := range gen.ArticleNames() {
		nl, err := gen.Article(name)
		if err != nil {
			panic(err)
		}
		rows = append(rows, analyzeRow(name, nl, core.Options{}))
	}
	return rows
}

func analyzeRow(name string, nl *Netlist, opt core.Options) Table3Row {
	opt.Overlap.Sliceable = true
	rep := core.Analyze(nl, opt)
	s := nl.Stats()
	return Table3Row{
		Name:           name,
		Gates:          s.Gates,
		Latches:        s.Latches,
		Before:         rep.CountsBefore,
		After:          rep.CountsAfter,
		CoverageBefore: rep.CoverageFractionBefore(),
		CoverageAfter:  rep.CoverageFraction(),
		Runtime:        rep.Runtime,
	}
}

// WriteTable3 renders Table 3 in the paper's two-row-per-article format.
func WriteTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintf(w, "Table 3: coverage results (per article: modules found / after overlap resolution)\n")
	fmt.Fprintf(w, "%-8s %7s", "design", "gates")
	for _, ty := range reportTypes {
		fmt.Fprintf(w, " %7.7s", ty.String())
	}
	fmt.Fprintf(w, " %7s %8s\n", "cov%", "time")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %7d", r.Name, r.Gates)
		for _, ty := range reportTypes {
			fmt.Fprintf(w, " %7d", r.Before[ty])
		}
		fmt.Fprintf(w, " %6.1f%% %8s\n", 100*r.CoverageBefore, r.Runtime.Round(time.Millisecond))
		fmt.Fprintf(w, "%-8s %7s", "", "")
		for _, ty := range reportTypes {
			fmt.Fprintf(w, " %7d", r.After[ty])
		}
		fmt.Fprintf(w, " %6.1f%%\n", 100*r.CoverageAfter)
	}
}

// Table4Row compares the basic and sliceable ILP formulations.
type Table4Row struct {
	Name              string
	BasicCoverage     float64
	BasicModules      int
	SliceableCoverage float64
	SliceableModules  int
}

// Table4 reruns overlap resolution under both formulations.
func Table4() []Table4Row {
	var rows []Table4Row
	for _, name := range gen.ArticleNames() {
		nl, err := gen.Article(name)
		if err != nil {
			panic(err)
		}
		stats := nl.Stats()
		total := float64(stats.Gates + stats.Latches)
		opt := core.Options{}
		opt.Overlap.Sliceable = false
		repB := core.Analyze(nl, opt)
		// Re-resolve the same module set sliceably for an exact
		// apples-to-apples comparison.
		resS, err := overlap.Resolve(repB.All, overlap.Options{Sliceable: true})
		if err != nil {
			panic(err)
		}
		rows = append(rows, Table4Row{
			Name:              name,
			BasicCoverage:     float64(repB.CoverageAfter) / total,
			BasicModules:      len(repB.Resolved),
			SliceableCoverage: float64(resS.Coverage) / total,
			SliceableModules:  len(resS.Selected),
		})
	}
	return rows
}

// WriteTable4 renders Table 4.
func WriteTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintf(w, "Table 4: sliceable vs basic ILP formulation\n")
	fmt.Fprintf(w, "%-8s %10s %9s %12s %11s\n", "design", "basic cov", "basic #m", "sliceable cov", "sliceable #m")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %9.1f%% %9d %11.1f%% %11d\n",
			r.Name, 100*r.BasicCoverage, r.BasicModules,
			100*r.SliceableCoverage, r.SliceableModules)
	}
}

// Table5Result is the BigSoC partition accounting.
type Table5Result struct {
	RawGates, SimplifiedGates int
	Cores                     []Table5Row
	MultiOwned, Unowned       int
	UnownedFraction           float64
}

// Table5Row is one core's partition size.
type Table5Row struct {
	Name     string
	Latches  int
	Elements int
}

// Table5 builds BigSoC, simplifies it, and partitions by reset tree.
func Table5() Table5Result {
	soc := gen.BigSoC()
	raw := soc.Stats()
	simp := simplify.Run(soc)
	nl := simp.Netlist
	var resets []ID
	for _, name := range gen.BigSoCCoreNames() {
		resets = append(resets, nl.FindByName("rst_"+name))
	}
	s := partition.ByResets(nl, resets)
	res := Table5Result{
		RawGates:        raw.Gates,
		SimplifiedGates: nl.Stats().Gates,
		MultiOwned:      s.MultiOwned,
		Unowned:         s.Unowned,
	}
	for _, p := range s.Partitions {
		res.Cores = append(res.Cores, Table5Row{
			Name:     p.Name,
			Latches:  len(p.Latches),
			Elements: len(p.Elements),
		})
	}
	if g := nl.Stats().Gates; g > 0 {
		res.UnownedFraction = float64(s.Unowned) / float64(g)
	}
	return res
}

// WriteTable5 renders Table 5.
func WriteTable5(w io.Writer, res Table5Result) {
	fmt.Fprintf(w, "Table 5: BigSoC partition information\n")
	fmt.Fprintf(w, "simplification: %d -> %d combinational elements (%.0f%% reduction)\n",
		res.RawGates, res.SimplifiedGates,
		100*(1-float64(res.SimplifiedGates)/float64(res.RawGates)))
	fmt.Fprintf(w, "%-16s %8s %9s\n", "core (reset)", "latches", "elements")
	for _, c := range res.Cores {
		fmt.Fprintf(w, "%-16s %8d %9d\n", c.Name, c.Latches, c.Elements)
	}
	fmt.Fprintf(w, "multi-owned gates: %d; unowned gates: %d (%.1f%%, interconnect)\n",
		res.MultiOwned, res.Unowned, 100*res.UnownedFraction)
}

// Table6Row is one BigSoC core's coverage.
type Table6Row struct {
	Name     string
	Gates    int
	Latches  int
	Modules  int
	Coverage float64
	Runtime  time.Duration
}

// Table6 analyzes each BigSoC partition with the full portfolio.
func Table6() []Table6Row {
	soc := gen.BigSoC()
	simp := simplify.Run(soc)
	nl := simp.Netlist
	var resets []ID
	for _, name := range gen.BigSoCCoreNames() {
		resets = append(resets, nl.FindByName("rst_"+name))
	}
	s := partition.ByResets(nl, resets)
	var rows []Table6Row
	for _, p := range s.Partitions {
		sub, _ := partition.Extract(nl, p)
		opt := core.Options{}
		opt.Overlap.Sliceable = true
		rep := core.Analyze(sub, opt)
		st := sub.Stats()
		rows = append(rows, Table6Row{
			Name:     p.Name,
			Gates:    st.Gates,
			Latches:  st.Latches,
			Modules:  len(rep.Resolved),
			Coverage: rep.CoverageFraction(),
			Runtime:  rep.Runtime,
		})
	}
	return rows
}

// WriteTable6 renders Table 6.
func WriteTable6(w io.Writer, rows []Table6Row) {
	fmt.Fprintf(w, "Table 6: coverage results on BigSoC partitions\n")
	fmt.Fprintf(w, "%-16s %7s %7s %8s %8s %9s\n", "core", "gates", "latch", "modules", "cov%", "time")
	var totalGates int
	var covered float64
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %7d %7d %8d %7.1f%% %9s\n",
			r.Name, r.Gates, r.Latches, r.Modules, 100*r.Coverage,
			r.Runtime.Round(time.Millisecond))
		totalGates += r.Gates + r.Latches
		covered += r.Coverage * float64(r.Gates+r.Latches)
	}
	if totalGates > 0 {
		fmt.Fprintf(w, "%-16s %23s %8s %7.1f%%\n", "overall", "", "", 100*covered/float64(totalGates))
	}
}

// Table7Row compares a clean article with its trojan-inserted version.
type Table7Row struct {
	Name                       string
	CleanGates, CleanLatches   int
	TrojanGates, TrojanLatches int
	DeltaGates, DeltaLatches   int
}

// Table7 builds the trojan-inserted designs and reports their size deltas.
func Table7() []Table7Row {
	pairs := []struct {
		name        string
		clean, troj *Netlist
	}{
		{"evoter", gen.EVoter(), gen.EVoterTrojaned()},
		{"oc8051", gen.OC8051(), gen.OC8051Trojaned()},
	}
	var rows []Table7Row
	for _, p := range pairs {
		cs, ts := p.clean.Stats(), p.troj.Stats()
		rows = append(rows, Table7Row{
			Name:          p.name,
			CleanGates:    cs.Gates,
			CleanLatches:  cs.Latches,
			TrojanGates:   ts.Gates,
			TrojanLatches: ts.Latches,
			DeltaGates:    ts.Gates - cs.Gates,
			DeltaLatches:  ts.Latches - cs.Latches,
		})
	}
	return rows
}

// WriteTable7 renders Table 7.
func WriteTable7(w io.Writer, rows []Table7Row) {
	fmt.Fprintf(w, "Table 7: details of trojan-inserted designs\n")
	fmt.Fprintf(w, "%-8s %12s %12s %13s %13s\n", "design", "clean gates", "clean latch", "trojan gates", "trojan latch")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %12d %12d %13d (+%d) %7d (+%d)\n",
			r.Name, r.CleanGates, r.CleanLatches,
			r.TrojanGates, r.DeltaGates, r.TrojanLatches, r.DeltaLatches)
	}
}

// Table8Row holds module counts for one design variant.
type Table8Row struct {
	Name          string
	Before, After map[module.Type]int
	Coverage      float64
}

// Table8 runs inference on the clean and trojaned articles. The paper shows
// both pre- and post-resolution counts because resolution may discard the
// very modules that reveal the trojan.
func Table8() []Table8Row {
	variants := []struct {
		name string
		nl   *Netlist
	}{
		{"evoter", gen.EVoter()},
		{"evoter-trojan", gen.EVoterTrojaned()},
		{"oc8051", gen.OC8051()},
		{"oc8051-trojan", gen.OC8051Trojaned()},
	}
	var rows []Table8Row
	for _, v := range variants {
		opt := core.Options{}
		opt.Overlap.Sliceable = true
		rep := core.Analyze(v.nl, opt)
		rows = append(rows, Table8Row{
			Name:     v.name,
			Before:   rep.CountsBefore,
			After:    rep.CountsAfter,
			Coverage: rep.CoverageFraction(),
		})
	}
	return rows
}

// WriteTable8 renders Table 8.
func WriteTable8(w io.Writer, rows []Table8Row) {
	fmt.Fprintf(w, "Table 8: trojan analysis results (module counts before resolution)\n")
	fmt.Fprintf(w, "%-14s", "design")
	for _, ty := range reportTypes {
		fmt.Fprintf(w, " %7.7s", ty.String())
	}
	fmt.Fprintf(w, " %7s\n", "cov%")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s", r.Name)
		for _, ty := range reportTypes {
			fmt.Fprintf(w, " %7d", r.Before[ty])
		}
		fmt.Fprintf(w, " %6.1f%%\n", 100*r.Coverage)
	}
}

// TrojanDelta summarizes, per module type, the extra modules the trojan
// introduced — the signal a human analyst follows (Section V-D).
func TrojanDelta(clean, troj Table8Row) map[module.Type]int {
	out := make(map[module.Type]int)
	var types []module.Type
	for ty := range troj.Before {
		types = append(types, ty)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	for _, ty := range types {
		if d := troj.Before[ty] - clean.Before[ty]; d != 0 {
			out[ty] = d
		}
	}
	return out
}
