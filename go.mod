module netlistre

go 1.22
