package netlistre

// Cut-classification microbenchmark (`make bench-match`): replays the
// exact stream of shrunk cut functions that Boolean matching sees on the
// BigSoC case study through the per-cut classification work of the old
// and new implementations of bitslice.Find, and writes the per-cut costs
// and speedups to the file named by BENCH_MATCH_OUT.
//
// The old implementation ran a permutation search (MatchAgainst) against
// every arity-matched library entry for every cut and — with unknown-class
// collection on, as core.Analyze enables whenever candidate modules are
// requested — additionally canonicalized every unmatched cut of arity >= 3
// to key its equivalence class. Nothing was memoized, so repeated cut
// functions (the common case: real designs reuse a few hundred distinct
// functions across hundreds of thousands of cuts) paid full price every
// time. The new implementation memoizes classifications per worker, and a
// memo miss resolves through the canonical index: one Canon + map probe,
// plus a single MatchAgainst on non-unique hits to pin argument order.
//
// The >= 3x speedup assertion on that old-vs-new per-cut cost is the
// ISSUE's acceptance gate. Against the committed
// testdata/bench_match_baseline.json the SPEEDUP RATIO is gated
// (>= baseline/1.5), not absolute nanoseconds, so the check is stable
// across machines. Cold (memo-miss) and warm (memo-hit) index costs are
// also reported to show where the time goes.

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"netlistre/internal/cuts"
	"netlistre/internal/truth"
)

// matchBenchResult is the BENCH_match.json schema.
type matchBenchResult struct {
	Design          string  `json:"design"`
	Cuts            int     `json:"cuts"`
	DistinctTables  int     `json:"distinct_tables"`
	SlowNsPerCut    float64 `json:"slow_ns_per_cut"`
	FastNsPerCut    float64 `json:"fast_ns_per_cut"`
	ColdNsPerCut    float64 `json:"cold_ns_per_cut"`
	WarmNsPerCut    float64 `json:"warm_ns_per_cut"`
	Speedup         float64 `json:"speedup"`
	CutsPerSecSlow  float64 `json:"cuts_per_sec_slow"`
	CutsPerSecFast  float64 `json:"cuts_per_sec_fast"`
	BaselineSpeedup float64 `json:"baseline_speedup,omitempty"`
}

// collectCutStream enumerates BigSoC's cuts and returns every shrunk,
// non-trivial cut function in node order — the exact tables bitslice.Find
// classifies.
func collectCutStream() []truth.Table {
	nl := Simplify(BigSoC()).Netlist
	sets := cuts.Enumerate(nl, cuts.Options{})
	var stream []truth.Table
	for id := 0; id < nl.Len(); id++ {
		if !nl.Kind(ID(id)).IsGate() {
			continue
		}
		for _, c := range sets[ID(id)] {
			if len(c.Leaves) == 1 && int(c.Leaves[0]) == id {
				continue
			}
			shrunk, _ := c.Table.Shrink()
			if shrunk.N == 0 {
				continue
			}
			stream = append(stream, shrunk)
		}
	}
	return stream
}

// classifySlow is the per-cut work of the original bitslice.Find with
// unknown-class collection enabled: a permutation search against every
// arity-matched library entry, plus canonicalization of unmatched cuts of
// arity >= 3 to key their equivalence class. No memoization.
func classifySlow(t truth.Table, byArity map[int][]truth.Entry) int {
	n := 0
	for _, e := range byArity[t.N] {
		if _, ok := t.MatchAgainst(e.Table); ok {
			n++
		}
	}
	if n == 0 && t.N >= 3 {
		canon, _ := t.Canon()
		if canon.String() == "" {
			panic("empty canonical key")
		}
	}
	return n
}

// classifyCold is the index fast path as bitslice.Find runs it on a memo
// miss: one LookupCanon, the MatchAgainst re-run on non-unique hits that
// keeps argument orders byte-identical, and the canonical unknown-class
// key for unmatched cuts of arity >= 3 (reusing the lookup's Canon).
func classifyCold(t truth.Table, ix *truth.Index) int {
	n := 0
	var hits []truth.Hit
	var canon truth.Table
	if t.N >= 3 {
		hits, canon, _ = ix.LookupCanon(t)
	} else {
		hits = ix.Lookup(t)
	}
	for _, h := range hits {
		if !h.Unique {
			if _, ok := t.MatchAgainst(h.Entry.Table); !ok {
				panic("index hit rejected by MatchAgainst")
			}
		}
		n++
	}
	if n == 0 && t.N >= 3 {
		if canon.String() == "" {
			panic("empty canonical key")
		}
	}
	return n
}

func TestMatchBench(t *testing.T) {
	out := os.Getenv("BENCH_MATCH_OUT")
	if out == "" {
		t.Skip("set BENCH_MATCH_OUT=<file> to run the matching microbenchmark")
	}
	stream := collectCutStream()
	if len(stream) == 0 {
		t.Fatal("empty cut stream")
	}
	lib := truth.Library()
	byArity := make(map[int][]truth.Entry)
	for _, e := range lib {
		byArity[e.Table.N] = append(byArity[e.Table.N], e)
	}
	ix := truth.NewIndex(lib) // fresh index: DefaultIndex may be pre-warmed

	// Every pass must consume its results so nothing is optimized away;
	// the totals also cross-check that the classifiers agree.
	const reps = 3
	var slowHits, fastHits, coldHits, warmHits int

	// Old implementation: full per-cut work, nothing memoized.
	t0 := time.Now()
	for r := 0; r < reps; r++ {
		slowHits = 0
		for _, tab := range stream {
			slowHits += classifySlow(tab, byArity)
		}
	}
	slowNs := float64(time.Since(t0).Nanoseconds()) / float64(reps*len(stream))

	// New implementation: the memoized classifier exactly as a Find worker
	// runs it — misses pay the index lookup, hits pay one map probe. A
	// fresh memo per rep so every rep pays the true miss costs.
	var distinct int
	t1 := time.Now()
	for r := 0; r < reps; r++ {
		fastHits = 0
		memo := make(map[truth.Table]int, 1<<10)
		for _, tab := range stream {
			n, ok := memo[tab]
			if !ok {
				n = classifyCold(tab, ix)
				memo[tab] = n
			}
			fastHits += n
		}
		distinct = len(memo)
	}
	fastNs := float64(time.Since(t1).Nanoseconds()) / float64(reps*len(stream))

	// Secondary breakdown: pure memo-miss cost (every cut through the
	// index, no memo) and pure memo-hit cost (memo pre-filled).
	t2 := time.Now()
	for r := 0; r < reps; r++ {
		coldHits = 0
		for _, tab := range stream {
			coldHits += classifyCold(tab, ix)
		}
	}
	coldNs := float64(time.Since(t2).Nanoseconds()) / float64(reps*len(stream))

	memo := make(map[truth.Table]int, 1<<10)
	for _, tab := range stream {
		memo[tab] = classifyCold(tab, ix)
	}
	t3 := time.Now()
	for r := 0; r < reps; r++ {
		warmHits = 0
		for _, tab := range stream {
			warmHits += memo[tab]
		}
	}
	warmNs := float64(time.Since(t3).Nanoseconds()) / float64(reps*len(stream))

	if slowHits != fastHits || fastHits != coldHits || coldHits != warmHits {
		t.Fatalf("classifier disagreement: slow=%d fast=%d cold=%d warm=%d",
			slowHits, fastHits, coldHits, warmHits)
	}

	res := matchBenchResult{
		Design:         "bigsoc",
		Cuts:           len(stream),
		DistinctTables: distinct,
		SlowNsPerCut:   slowNs,
		FastNsPerCut:   fastNs,
		ColdNsPerCut:   coldNs,
		WarmNsPerCut:   warmNs,
		Speedup:        slowNs / fastNs,
		CutsPerSecSlow: 1e9 / slowNs,
		CutsPerSecFast: 1e9 / fastNs,
	}

	// Acceptance gate: the memoized index classifier must be at least 3x
	// faster per cut than the old per-entry search.
	if res.Speedup < 3 {
		t.Errorf("speedup %.2fx, want >= 3x (slow %.0f ns/cut, fast %.1f ns/cut)",
			res.Speedup, slowNs, fastNs)
	}

	// Regression gate vs the committed baseline: the speedup ratio is
	// machine-independent, so a generous 1.5x slack catches real
	// regressions without flaking on slower CI hosts.
	if bl, err := os.ReadFile("testdata/bench_match_baseline.json"); err == nil {
		var base matchBenchResult
		if err := json.Unmarshal(bl, &base); err != nil {
			t.Fatalf("corrupt baseline: %v", err)
		}
		res.BaselineSpeedup = base.Speedup
		if res.Speedup < base.Speedup/1.5 {
			t.Errorf("speedup %.2fx regressed below baseline %.2fx / 1.5",
				res.Speedup, base.Speedup)
		}
	}

	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("%d cuts (%d distinct): slow %.0f ns, fast %.1f ns (%.1fx); cold %.0f ns, warm %.1f ns -> %s",
		len(stream), distinct, slowNs, fastNs, res.Speedup, coldNs, warmNs, out)
}
