package netlistre

// Golden-report regression tests: the full text report for two articles
// is committed under testdata/, so a pipeline refactor that silently
// changes the inferred modules (names, counts, coverage, sizes) fails
// loudly instead of drifting. Wall-clock durations are normalized before
// comparison; everything else must match byte for byte.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden report files")

// durationRE matches a (possibly compound) Go duration token with its
// leading padding, e.g. "   583µs", " 1.2ms", " 1m2.5s".
var durationRE = regexp.MustCompile(` *\b[0-9]+(\.[0-9]+)?(ns|µs|us|ms|s|m|h)([0-9]+(\.[0-9]+)?(ns|µs|us|ms|s|m|h))*\b`)

func normalizeDurations(s string) string {
	return durationRE.ReplaceAllString(s, " <dur>")
}

func TestGoldenReports(t *testing.T) {
	for _, name := range []string{"usb", "evoter"} {
		name := name
		t.Run(name, func(t *testing.T) {
			nl, err := TestArticle(name)
			if err != nil {
				t.Fatal(err)
			}
			opt := Options{}
			opt.Overlap.Sliceable = true
			rep := Analyze(nl, opt)

			var buf bytes.Buffer
			if err := WriteReport(&buf, rep); err != nil {
				t.Fatal(err)
			}
			got := normalizeDurations(buf.String())

			path := filepath.Join("testdata", "report_"+name+".golden")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with `go test -run TestGoldenReports -update`): %v", err)
			}
			if got != string(want) {
				t.Errorf("report for %s drifted from %s.\nRun `go test -run TestGoldenReports -update` if the change is intended.\n--- got ---\n%s\n--- want ---\n%s",
					name, path, got, want)
			}
		})
	}
}
