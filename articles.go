package netlistre

import (
	"netlistre/internal/gen"
	"netlistre/internal/netlist"
	"netlistre/internal/oracle"
)

// This file exposes the synthetic test articles used by the paper-shaped
// experiments (Table 2). The real benchmarks are proprietary or require a
// commercial synthesis flow; these generators reproduce their structural
// mix — see DESIGN.md for the substitution rationale.

// TestArticleNames lists the available synthetic test articles in Table 2
// order: mips16, riscfpu, router, oc8051, aemb, msp430, usb, evoter.
func TestArticleNames() []string { return gen.ArticleNames() }

// TestArticle builds the named synthetic test article.
func TestArticle(name string) (*Netlist, error) { return gen.Article(name) }

// TestArticleDescription returns the one-line description of an article.
func TestArticleDescription(name string) string { return gen.ArticleDescriptions[name] }

// BigSoC builds the seven-core SoC case study of Section V-C: per-core
// reset inputs (rst_<core>), inter-core interconnect, and electrical
// buffering noise. Pair with Simplify and PartitionByResets.
func BigSoC() *Netlist { return gen.BigSoC() }

// BigSoCCoreNames lists BigSoC's constituent cores.
func BigSoCCoreNames() []string { return gen.BigSoCCoreNames() }

// BigSoCResetNames lists the per-core reset input names used for
// partitioning.
func BigSoCResetNames() []string {
	var names []string
	for _, c := range gen.BigSoCCoreNames() {
		names = append(names, "rst_"+c)
	}
	return names
}

// LutMap rewrites a gate-level netlist into its LUT-mapped FPGA-style
// equivalent: every combinational gate becomes a k-input truth-table cell
// (k <= MaxLutInputs), with wider gates decomposed into balanced trees of
// same-op chunks. The result is the workload an off-the-shelf technology
// mapper would hand the analysis; gennet -lutmap emits it.
func LutMap(nl *Netlist) *Netlist {
	mapped, _ := gen.LutMapped(nl)
	return mapped
}

// EVoterTrojaned builds the eVoter article with the key-sequence backdoor
// of Section V-D.
func EVoterTrojaned() *Netlist { return gen.EVoterTrojaned() }

// OC8051Trojaned builds the oc8051 article with the XOR kill switch of
// Section V-D.
func OC8051Trojaned() *Netlist { return gen.OC8051Trojaned() }

// AddElectricalNoise rebuilds nl with semantics-preserving buffers, delay
// chains and paired inverters on a random fraction of edges, emulating a
// raw physical netlist.
func AddElectricalNoise(nl *Netlist, seed int64, prob float64) *Netlist {
	return gen.AddElectricalNoise(nl, seed, prob)
}

// Labels is the ground-truth answer key recorded while a labeled article
// builds: which gates belong to which designed component, the port words,
// and the trojan suspect set. See ScoreReport.
type Labels = gen.Labels

// ConformanceOptions tunes the ground-truth matching thresholds; the zero
// value selects the calibrated defaults.
type ConformanceOptions = oracle.Options

// ConformanceResult is the per-design scorecard ScoreReport produces.
type ConformanceResult = oracle.Result

// LabeledTestArticleNames lists the articles LabeledTestArticle accepts:
// the Table 2 set plus the oc8051-trojan and evoter-trojan variants.
func LabeledTestArticleNames() []string { return gen.LabeledArticleNames() }

// LabeledTestArticle builds the named article together with its
// ground-truth labels, for conformance scoring against an analysis report.
func LabeledTestArticle(name string) (*Netlist, *Labels, error) {
	return gen.LabeledArticle(name)
}

// ScoreReport scores an analysis report against an article's ground-truth
// labels: per-class precision/recall/F1, word recovery, and (for trojaned
// articles) suspect-set accuracy. The revcheck command runs this over the
// whole article set and gates on the recorded baseline.
func ScoreReport(rep *Report, lab *Labels, opt ConformanceOptions) *ConformanceResult {
	return oracle.Score(rep, lab, opt)
}

// Nil is the invalid node ID.
const Nil = netlist.Nil

// VGACore builds a frame buffer with an OR-AND scan-plane read (the
// structure behind the paper's BigSoC VGA case study). The generic RAM
// analysis does not cover it; pair with FindFramebufferRead.
func VGACore(rows, cols int) (*Netlist, []ID) {
	nl, px := gen.VGACore(rows, cols)
	return nl, px
}
