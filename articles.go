package netlistre

import (
	"netlistre/internal/gen"
	"netlistre/internal/netlist"
)

// This file exposes the synthetic test articles used by the paper-shaped
// experiments (Table 2). The real benchmarks are proprietary or require a
// commercial synthesis flow; these generators reproduce their structural
// mix — see DESIGN.md for the substitution rationale.

// TestArticleNames lists the available synthetic test articles in Table 2
// order: mips16, riscfpu, router, oc8051, aemb, msp430, usb, evoter.
func TestArticleNames() []string { return gen.ArticleNames() }

// TestArticle builds the named synthetic test article.
func TestArticle(name string) (*Netlist, error) { return gen.Article(name) }

// TestArticleDescription returns the one-line description of an article.
func TestArticleDescription(name string) string { return gen.ArticleDescriptions[name] }

// BigSoC builds the seven-core SoC case study of Section V-C: per-core
// reset inputs (rst_<core>), inter-core interconnect, and electrical
// buffering noise. Pair with Simplify and PartitionByResets.
func BigSoC() *Netlist { return gen.BigSoC() }

// BigSoCCoreNames lists BigSoC's constituent cores.
func BigSoCCoreNames() []string { return gen.BigSoCCoreNames() }

// BigSoCResetNames lists the per-core reset input names used for
// partitioning.
func BigSoCResetNames() []string {
	var names []string
	for _, c := range gen.BigSoCCoreNames() {
		names = append(names, "rst_"+c)
	}
	return names
}

// EVoterTrojaned builds the eVoter article with the key-sequence backdoor
// of Section V-D.
func EVoterTrojaned() *Netlist { return gen.EVoterTrojaned() }

// OC8051Trojaned builds the oc8051 article with the XOR kill switch of
// Section V-D.
func OC8051Trojaned() *Netlist { return gen.OC8051Trojaned() }

// AddElectricalNoise rebuilds nl with semantics-preserving buffers, delay
// chains and paired inverters on a random fraction of edges, emulating a
// raw physical netlist.
func AddElectricalNoise(nl *Netlist, seed int64, prob float64) *Netlist {
	return gen.AddElectricalNoise(nl, seed, prob)
}

// Nil is the invalid node ID.
const Nil = netlist.Nil

// VGACore builds a frame buffer with an OR-AND scan-plane read (the
// structure behind the paper's BigSoC VGA case study). The generic RAM
// analysis does not cover it; pair with FindFramebufferRead.
func VGACore(rows, cols int) (*Netlist, []ID) {
	nl, px := gen.VGACore(rows, cols)
	return nl, px
}
