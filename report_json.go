package netlistre

// Machine-readable report export: downstream tooling (diffing runs,
// trojan-delta dashboards, CI gates on coverage) consumes the analysis as
// JSON rather than scraping the text report.

import (
	"encoding/json"
	"io"
	"sort"
)

// JSONReport is the serializable form of a Report.
type JSONReport struct {
	Design        string         `json:"design"`
	Inputs        int            `json:"inputs"`
	Outputs       int            `json:"outputs"`
	Gates         int            `json:"gates"`
	Latches       int            `json:"latches"`
	TotalElements int            `json:"total_elements"`
	Coverage      JSONCoverage   `json:"coverage"`
	RuntimeMS     float64        `json:"runtime_ms"`
	Trace         []JSONStage    `json:"trace,omitempty"`
	Overlap       JSONOverlap    `json:"overlap_resolution"`
	Modules       []JSONModule   `json:"modules"`
	CountsBefore  map[string]int `json:"counts_before"`
	CountsAfter   map[string]int `json:"counts_after"`
	// Degraded is set when the run timed out, was canceled, a stage
	// panicked, or the input failed validation; per-stage statuses are in
	// Trace. Both fields are omitted for complete runs so existing
	// consumers see byte-identical output.
	Degraded        bool   `json:"degraded,omitempty"`
	ValidationError string `json:"validation_error,omitempty"`
}

// JSONCoverage carries coverage counts and fractions.
type JSONCoverage struct {
	BeforeElements int     `json:"before_elements"`
	AfterElements  int     `json:"after_elements"`
	BeforeFraction float64 `json:"before_fraction"`
	AfterFraction  float64 `json:"after_fraction"`
}

// JSONOverlap reports resolution status.
type JSONOverlap struct {
	ModulesBefore int    `json:"modules_before"`
	ModulesAfter  int    `json:"modules_after"`
	Optimal       bool   `json:"optimal"`
	Error         string `json:"error,omitempty"`
}

// JSONStage is one per-stage timing entry of the pipeline trace. Status
// and Error appear only for stages that did not complete normally;
// Provenance appears only when the stage did not execute its body in this
// run ("cached": replayed from the stage store, "skipped": the run was
// already over), so cold complete runs are byte-identical to earlier
// releases.
type JSONStage struct {
	Name       string  `json:"name"`
	StartMS    float64 `json:"start_ms"`
	DurationMS float64 `json:"duration_ms"`
	Modules    int     `json:"modules"`
	Status     string  `json:"status,omitempty"`
	Provenance string  `json:"provenance,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// JSONModule is one resolved module.
type JSONModule struct {
	Name     string            `json:"name"`
	Type     string            `json:"type"`
	Width    int               `json:"width"`
	Elements int               `json:"elements"`
	Ports    map[string][]int  `json:"ports,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// ToJSONReport converts an analysis Report.
func ToJSONReport(rep *Report) JSONReport {
	stats := rep.Netlist.Stats()
	out := JSONReport{
		Design:        rep.Netlist.Name,
		Inputs:        stats.Inputs,
		Outputs:       stats.Outputs,
		Gates:         stats.Gates,
		Latches:       stats.Latches,
		TotalElements: rep.TotalElements,
		Coverage: JSONCoverage{
			BeforeElements: rep.CoverageBefore,
			AfterElements:  rep.CoverageAfter,
			BeforeFraction: rep.CoverageFractionBefore(),
			AfterFraction:  rep.CoverageFraction(),
		},
		RuntimeMS: float64(rep.Runtime.Microseconds()) / 1000,
		Overlap: JSONOverlap{
			ModulesBefore: len(rep.All),
			ModulesAfter:  len(rep.Resolved),
			Optimal:       rep.OverlapOptimal,
		},
		CountsBefore: map[string]int{},
		CountsAfter:  map[string]int{},
	}
	if rep.OverlapErr != nil {
		out.Overlap.Error = rep.OverlapErr.Error()
	}
	out.Degraded = rep.Degraded
	if rep.ValidationErr != nil {
		out.ValidationError = rep.ValidationErr.Error()
	}
	for _, st := range rep.Trace {
		js := JSONStage{
			Name:       st.Name,
			StartMS:    float64(st.Start.Microseconds()) / 1000,
			DurationMS: float64(st.Duration.Microseconds()) / 1000,
			Modules:    st.Modules,
		}
		if st.Status != StageOK {
			js.Status = st.Status.String()
			js.Error = firstLine(st.Err)
		}
		if st.Provenance != StageRan {
			js.Provenance = st.Provenance.String()
		}
		out.Trace = append(out.Trace, js)
	}
	for ty, n := range rep.CountsBefore {
		out.CountsBefore[ty.String()] = n
	}
	for ty, n := range rep.CountsAfter {
		out.CountsAfter[ty.String()] = n
	}
	for _, m := range rep.Resolved {
		jm := JSONModule{
			Name:     m.Name,
			Type:     m.Type.String(),
			Width:    m.Width,
			Elements: m.Size(),
			Attrs:    m.Attr,
		}
		if len(m.Ports) > 0 {
			jm.Ports = make(map[string][]int, len(m.Ports))
			var names []string
			for name := range m.Ports {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				ids := m.Ports[name]
				ints := make([]int, len(ids))
				for i, id := range ids {
					ints[i] = int(id)
				}
				jm.Ports[name] = ints
			}
		}
		out.Modules = append(out.Modules, jm)
	}
	sort.Slice(out.Modules, func(i, j int) bool {
		if out.Modules[i].Elements != out.Modules[j].Elements {
			return out.Modules[i].Elements > out.Modules[j].Elements
		}
		return out.Modules[i].Name < out.Modules[j].Name
	})
	return out
}

// WriteJSONReport writes the report as indented JSON.
func WriteJSONReport(w io.Writer, rep *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ToJSONReport(rep))
}

// ReadJSONReport decodes a report previously written by WriteJSONReport
// (or served by the revand analysis service). Unknown fields are
// rejected, so a report produced by a newer, incompatible wire format
// fails loudly instead of being silently truncated.
func ReadJSONReport(r io.Reader) (*JSONReport, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var rep JSONReport
	if err := dec.Decode(&rep); err != nil {
		return nil, err
	}
	return &rep, nil
}
