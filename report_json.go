package netlistre

// Machine-readable report export: downstream tooling (diffing runs,
// trojan-delta dashboards, CI gates on coverage) consumes the analysis as
// JSON rather than scraping the text report.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"netlistre/internal/module"
)

// JSONReport is the serializable form of a Report.
type JSONReport struct {
	Design        string         `json:"design"`
	Inputs        int            `json:"inputs"`
	Outputs       int            `json:"outputs"`
	Gates         int            `json:"gates"`
	Latches       int            `json:"latches"`
	TotalElements int            `json:"total_elements"`
	Coverage      JSONCoverage   `json:"coverage"`
	RuntimeMS     float64        `json:"runtime_ms"`
	Trace         []JSONStage    `json:"trace,omitempty"`
	Overlap       JSONOverlap    `json:"overlap_resolution"`
	Modules       []JSONModule   `json:"modules"`
	CountsBefore  map[string]int `json:"counts_before"`
	CountsAfter   map[string]int `json:"counts_after"`
	// Degraded is set when the run timed out, was canceled, a stage
	// panicked, or the input failed validation; per-stage statuses are in
	// Trace. Both fields are omitted for complete runs so existing
	// consumers see byte-identical output.
	Degraded        bool   `json:"degraded,omitempty"`
	ValidationError string `json:"validation_error,omitempty"`
}

// JSONCoverage carries coverage counts and fractions.
type JSONCoverage struct {
	BeforeElements int     `json:"before_elements"`
	AfterElements  int     `json:"after_elements"`
	BeforeFraction float64 `json:"before_fraction"`
	AfterFraction  float64 `json:"after_fraction"`
}

// JSONOverlap reports resolution status.
type JSONOverlap struct {
	ModulesBefore int    `json:"modules_before"`
	ModulesAfter  int    `json:"modules_after"`
	Optimal       bool   `json:"optimal"`
	Error         string `json:"error,omitempty"`
}

// JSONStage is one per-stage timing entry of the pipeline trace. Status
// and Error appear only for stages that did not complete normally;
// Provenance appears only when the stage did not execute its body in this
// run ("cached": replayed from the stage store, "skipped": the run was
// already over), so cold complete runs are byte-identical to earlier
// releases.
type JSONStage struct {
	Name       string  `json:"name"`
	StartMS    float64 `json:"start_ms"`
	DurationMS float64 `json:"duration_ms"`
	Modules    int     `json:"modules"`
	Status     string  `json:"status,omitempty"`
	Provenance string  `json:"provenance,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// JSONModule is one resolved module. ElementIDs and SliceIDs are filled
// only when the report is rendered with element detail (the fleet wire
// format — see WriteJSONReportElements); the default rendering keeps them
// empty so existing reports stay byte-identical.
type JSONModule struct {
	Name     string            `json:"name"`
	Type     string            `json:"type"`
	Width    int               `json:"width"`
	Elements int               `json:"elements"`
	Ports    map[string][]int  `json:"ports,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	// ElementIDs lists every covered netlist node, sorted ascending.
	ElementIDs []int `json:"element_ids,omitempty"`
	// SliceIDs carries the per-bit slice decomposition for the sliceable
	// ILP formulation, when the module has one.
	SliceIDs [][]int `json:"slice_ids,omitempty"`
}

// ToJSONReport converts an analysis Report.
func ToJSONReport(rep *Report) JSONReport {
	return toJSONReport(rep, false)
}

// ToJSONReportElements converts a Report including per-module element and
// slice ID lists — the lossless form a fleet coordinator needs to merge a
// partition's resolved modules back into the parent netlist.
func ToJSONReportElements(rep *Report) JSONReport {
	return toJSONReport(rep, true)
}

func toJSONReport(rep *Report, includeElements bool) JSONReport {
	stats := rep.Netlist.Stats()
	out := JSONReport{
		Design:        rep.Netlist.Name,
		Inputs:        stats.Inputs,
		Outputs:       stats.Outputs,
		Gates:         stats.Gates,
		Latches:       stats.Latches,
		TotalElements: rep.TotalElements,
		Coverage: JSONCoverage{
			BeforeElements: rep.CoverageBefore,
			AfterElements:  rep.CoverageAfter,
			BeforeFraction: rep.CoverageFractionBefore(),
			AfterFraction:  rep.CoverageFraction(),
		},
		RuntimeMS: float64(rep.Runtime.Microseconds()) / 1000,
		Overlap: JSONOverlap{
			ModulesBefore: len(rep.All),
			ModulesAfter:  len(rep.Resolved),
			Optimal:       rep.OverlapOptimal,
		},
		CountsBefore: map[string]int{},
		CountsAfter:  map[string]int{},
	}
	if rep.OverlapErr != nil {
		out.Overlap.Error = rep.OverlapErr.Error()
	}
	out.Degraded = rep.Degraded
	if rep.ValidationErr != nil {
		out.ValidationError = rep.ValidationErr.Error()
	}
	for _, st := range rep.Trace {
		js := JSONStage{
			Name:       st.Name,
			StartMS:    float64(st.Start.Microseconds()) / 1000,
			DurationMS: float64(st.Duration.Microseconds()) / 1000,
			Modules:    st.Modules,
		}
		if st.Status != StageOK {
			js.Status = st.Status.String()
			js.Error = firstLine(st.Err)
		}
		if st.Provenance != StageRan {
			js.Provenance = st.Provenance.String()
		}
		out.Trace = append(out.Trace, js)
	}
	for ty, n := range rep.CountsBefore {
		out.CountsBefore[ty.String()] = n
	}
	for ty, n := range rep.CountsAfter {
		out.CountsAfter[ty.String()] = n
	}
	for _, m := range rep.Resolved {
		jm := JSONModule{
			Name:     m.Name,
			Type:     m.Type.String(),
			Width:    m.Width,
			Elements: m.Size(),
			Attrs:    m.Attr,
		}
		if includeElements {
			jm.ElementIDs = make([]int, len(m.Elements))
			for i, id := range m.Elements {
				jm.ElementIDs[i] = int(id)
			}
			if len(m.Slices) > 0 {
				jm.SliceIDs = make([][]int, len(m.Slices))
				for i, slice := range m.Slices {
					ints := make([]int, len(slice))
					for j, id := range slice {
						ints[j] = int(id)
					}
					jm.SliceIDs[i] = ints
				}
			}
		}
		if len(m.Ports) > 0 {
			jm.Ports = make(map[string][]int, len(m.Ports))
			var names []string
			for name := range m.Ports {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				ids := m.Ports[name]
				ints := make([]int, len(ids))
				for i, id := range ids {
					ints[i] = int(id)
				}
				jm.Ports[name] = ints
			}
		}
		out.Modules = append(out.Modules, jm)
	}
	sort.Slice(out.Modules, func(i, j int) bool {
		if out.Modules[i].Elements != out.Modules[j].Elements {
			return out.Modules[i].Elements > out.Modules[j].Elements
		}
		return out.Modules[i].Name < out.Modules[j].Name
	})
	return out
}

// WriteJSONReport writes the report as indented JSON.
func WriteJSONReport(w io.Writer, rep *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ToJSONReport(rep))
}

// WriteJSONReportElements writes the report as indented JSON including
// per-module element and slice ID lists (the fleet wire format). Reports
// written without element detail are unchanged byte for byte.
func WriteJSONReportElements(w io.Writer, rep *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ToJSONReportElements(rep))
}

// ModulesFromJSONReport reconstructs the resolved module set of a report
// written with element detail (WriteJSONReportElements). The returned
// modules carry the element sets, slices, ports and attributes of the
// originals, in the report's module order; a fleet coordinator remaps
// their IDs into the parent netlist and feeds them to overlap resolution.
// It fails on a report without element IDs, which cannot participate in a
// merge.
func ModulesFromJSONReport(rep *JSONReport) ([]*Module, error) {
	mods := make([]*Module, 0, len(rep.Modules))
	for _, jm := range rep.Modules {
		if len(jm.ElementIDs) == 0 && jm.Elements > 0 {
			return nil, fmt.Errorf("netlistre: module %q has no element IDs; the report was not written with element detail", jm.Name)
		}
		m := &Module{
			Type:  module.TypeFromString(jm.Type),
			Name:  jm.Name,
			Width: jm.Width,
		}
		elems := make([]ID, len(jm.ElementIDs))
		for i, e := range jm.ElementIDs {
			elems[i] = ID(e)
		}
		m.SetElements(elems)
		for _, slice := range jm.SliceIDs {
			ids := make([]ID, len(slice))
			for i, e := range slice {
				ids[i] = ID(e)
			}
			m.Slices = append(m.Slices, ids)
		}
		var portNames []string
		for name := range jm.Ports {
			portNames = append(portNames, name)
		}
		sort.Strings(portNames)
		for _, name := range portNames {
			ids := make([]ID, len(jm.Ports[name]))
			for i, e := range jm.Ports[name] {
				ids[i] = ID(e)
			}
			m.SetPort(name, ids)
		}
		for k, v := range jm.Attrs {
			m.SetAttr(k, v)
		}
		mods = append(mods, m)
	}
	return mods, nil
}

// ReadJSONReport decodes a report previously written by WriteJSONReport
// (or served by the revand analysis service). Unknown fields are
// rejected, so a report produced by a newer, incompatible wire format
// fails loudly instead of being silently truncated.
func ReadJSONReport(r io.Reader) (*JSONReport, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var rep JSONReport
	if err := dec.Decode(&rep); err != nil {
		return nil, err
	}
	return &rep, nil
}
