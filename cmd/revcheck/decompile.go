package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"netlistre/internal/gen"
	"netlistre/internal/rtl"
)

// decompileRow is one article's entry in the decompile scorecard. The
// residual counts are the gate: a template regression shows up as gates
// that used to lower into instances or always blocks falling back to
// structural passthrough, which the baseline comparison rejects.
type decompileRow struct {
	Design          string `json:"design"`
	Method          string `json:"method"`
	Equivalent      bool   `json:"equivalent"`
	Instances       int    `json:"instances"`
	AlwaysBlocks    int    `json:"always_blocks"`
	ResidualGates   int    `json:"residual_gates"`
	ResidualLatches int    `json:"residual_latches"`
	CoveredElements int    `json:"covered_elements"`
	Words           int    `json:"words"`
}

// runDecompile is the -decompile mode: every labeled article is lowered to
// word-level Verilog at each worker count, the emissions are required to be
// byte-identical, the round-trip equivalence check must pass, and the
// per-article residual counts are gated against the recorded baseline.
func runDecompile(articleCSV, workerCSV, out, baseline string, bless bool) error {
	names := gen.LabeledArticleNames()
	if articleCSV != "" {
		names = strings.Split(articleCSV, ",")
	}
	workerCounts, err := parseWorkers(workerCSV)
	if err != nil {
		return err
	}

	var failures []string
	fail := func(format string, args ...interface{}) {
		failures = append(failures, fmt.Sprintf(format, args...))
	}
	var rows []decompileRow

	for _, name := range names {
		nl, lab, err := gen.LabeledArticle(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		var first *rtl.EmitResult
		for i, w := range workerCounts {
			er, err := rtl.Emit(nl, analyze(nl, w))
			if err != nil {
				fail("%s: emit at workers=%d: %v", lab.Design, w, err)
				break
			}
			if i == 0 {
				first = er
				continue
			}
			if !bytes.Equal(er.Verilog, first.Verilog) {
				fail("%s: emitted RTL at workers=%d differs from workers=%d",
					lab.Design, w, workerCounts[0])
			}
		}
		if first == nil {
			continue
		}
		eq, err := rtl.Check(nl, first)
		if err != nil {
			fail("%s: equivalence check: %v", lab.Design, err)
			continue
		}
		if !eq.Equivalent {
			fail("%s: round-trip equivalence failed: %v", lab.Design, eq)
		}
		st := first.Stats
		rows = append(rows, decompileRow{
			Design:          lab.Design,
			Method:          eq.Method,
			Equivalent:      eq.Equivalent,
			Instances:       st.Instances,
			AlwaysBlocks:    st.AlwaysBlocks,
			ResidualGates:   st.ResidualGates,
			ResidualLatches: st.ResidualLatches,
			CoveredElements: st.CoveredElements,
			Words:           st.Words,
		})
		fmt.Printf("%-14s %v  instances=%d always=%d residual=%d+%dL words=%d\n",
			lab.Design, eq, st.Instances, st.AlwaysBlocks,
			st.ResidualGates, st.ResidualLatches, st.Words)
	}

	if out != "" {
		if err := writeDecompileRows(out, rows); err != nil {
			return err
		}
		fmt.Println("wrote", out)
	}
	if baseline != "" && bless {
		if err := writeDecompileRows(baseline, rows); err != nil {
			return err
		}
		fmt.Println("blessed", baseline)
	} else if baseline != "" {
		base, err := readDecompileBaseline(baseline)
		if err != nil {
			return err
		}
		if base == nil {
			fmt.Printf("no baseline at %s (run revcheck -decompile -bless to record one)\n", baseline)
		} else {
			for _, reg := range compareDecompile(rows, base) {
				fail("baseline: %s", reg)
			}
		}
	}

	if len(failures) > 0 {
		sort.Strings(failures)
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL:", f)
		}
		return fmt.Errorf("%d decompile failure(s)", len(failures))
	}
	fmt.Println("decompile OK")
	return nil
}

// compareDecompile gates this run's rows against the baseline: residual
// counts must not grow (coverage regression), and an article present in
// the baseline must not vanish or lose equivalence.
func compareDecompile(rows, base []decompileRow) []string {
	byDesign := make(map[string]decompileRow, len(rows))
	for _, r := range rows {
		byDesign[r.Design] = r
	}
	var regs []string
	for _, b := range base {
		r, ok := byDesign[b.Design]
		if !ok {
			continue // -articles subset
		}
		if !r.Equivalent && b.Equivalent {
			regs = append(regs, fmt.Sprintf("%s: equivalence regressed", b.Design))
		}
		if r.ResidualGates > b.ResidualGates {
			regs = append(regs, fmt.Sprintf("%s: residual gates %d > baseline %d",
				b.Design, r.ResidualGates, b.ResidualGates))
		}
		if r.ResidualLatches > b.ResidualLatches {
			regs = append(regs, fmt.Sprintf("%s: residual latches %d > baseline %d",
				b.Design, r.ResidualLatches, b.ResidualLatches))
		}
	}
	return regs
}

func writeDecompileRows(path string, rows []decompileRow) error {
	b, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// readDecompileBaseline returns nil without error when the baseline file
// does not exist yet, matching the conformance baseline's behaviour.
func readDecompileBaseline(path string) ([]decompileRow, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var rows []decompileRow
	if err := json.Unmarshal(b, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rows, nil
}
