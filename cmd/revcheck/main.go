// Command revcheck runs the ground-truth conformance harness: every
// labeled article is analyzed at several worker counts, scored against the
// generator's ground truth, pushed through the metamorphic mutations, and
// summarized in a deterministic scorecard (BENCH_conformance.json). The
// exit status is the gate: nonzero when worker counts disagree, a mutation
// invariant breaks, an article's macro F1 falls below -min-macro, or any
// score regresses below the recorded baseline.
//
// Usage:
//
//	revcheck                       # full matrix, compare against baseline
//	revcheck -articles usb,evoter  # subset
//	revcheck -mutations none       # skip mutations
//	revcheck -bless                # rewrite the baseline from this run
//	revcheck -decompile            # RTL decompile gate instead (see below)
//	revcheck -diff                 # differential trojan-recovery gate
//
// With -diff the harness switches to the differential gate: every
// golden/suspect trojan article pair (gate-level and LUT-mapped) is
// compared with the structural diff matcher, which must recover the
// injected trojan gate set exactly — added nodes equal to the labeled
// trojan set, nothing removed or retyped — and each golden netlist must
// self-diff as identical.
//
// With -decompile the harness switches to the decompilation gate: every
// labeled article is lowered to word-level Verilog at each worker count,
// the emissions must be byte-identical across counts, the round-trip
// equivalence self-check must pass, and the per-article residual gate and
// latch counts are gated against testdata/decompile_baseline.json (a
// template regression surfaces as residual counts growing). -bless,
// -articles, and -workers apply to this mode too.
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"
	"sort"
	"strconv"
	"strings"

	"netlistre/internal/core"
	"netlistre/internal/gen"
	"netlistre/internal/netlist"
	"netlistre/internal/oracle"
	"netlistre/internal/oracle/mutate"
)

func main() {
	var (
		articles  = flag.String("articles", "", "comma-separated articles (default: all labeled)")
		mutations = flag.String("mutations", "", "comma-separated mutations, or 'none' (default: all)")
		workers   = flag.String("workers", "1,4", "comma-separated worker counts to cross-check")
		out       = flag.String("out", "BENCH_conformance.json", "scorecard output path ('' to skip)")
		baseline  = flag.String("baseline", "testdata/conformance_baseline.json",
			"baseline scorecard to gate against ('' to skip)")
		bless    = flag.Bool("bless", false, "rewrite -baseline from this run instead of gating")
		eps      = flag.Float64("eps", 1e-6, "score tolerance for the baseline gate")
		minMacro = flag.Float64("min-macro", 0.9, "minimum per-article macro F1")
		seed     = flag.Int64("seed", 11, "mutation seed")

		diffGate     = flag.Bool("diff", false, "run the differential trojan-recovery gate instead of the conformance matrix")
		decompile    = flag.Bool("decompile", false, "run the RTL decompilation gate instead of the conformance matrix")
		decompileOut = flag.String("decompile-out", "BENCH_decompile.json", "decompile scorecard output path ('' to skip)")
		decompileBas = flag.String("decompile-baseline", "testdata/decompile_baseline.json",
			"decompile baseline to gate residual counts against ('' to skip)")
	)
	flag.Parse()
	if *diffGate {
		if err := runDiff(*articles); err != nil {
			fmt.Fprintln(os.Stderr, "revcheck:", err)
			os.Exit(1)
		}
		return
	}
	if *decompile {
		if err := runDecompile(*articles, *workers, *decompileOut, *decompileBas, *bless); err != nil {
			fmt.Fprintln(os.Stderr, "revcheck:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*articles, *mutations, *workers, *out, *baseline, *bless, *eps, *minMacro, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "revcheck:", err)
		os.Exit(1)
	}
}

func run(articleCSV, mutationCSV, workerCSV, out, baseline string, bless bool,
	eps, minMacro float64, seed int64) error {
	names := gen.LabeledArticleNames()
	if articleCSV != "" {
		names = strings.Split(articleCSV, ",")
	}
	var muts []mutate.Mutation
	switch mutationCSV {
	case "none":
	case "":
		muts = mutate.All()
	default:
		for _, name := range strings.Split(mutationCSV, ",") {
			m, err := mutate.Named(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			muts = append(muts, m)
		}
	}
	workerCounts, err := parseWorkers(workerCSV)
	if err != nil {
		return err
	}

	var failures []string
	fail := func(format string, args ...interface{}) {
		failures = append(failures, fmt.Sprintf(format, args...))
	}
	var results []*oracle.Result

	for _, name := range names {
		nl, lab, err := gen.LabeledArticle(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		var first *oracle.Result
		for i, w := range workerCounts {
			res := oracle.Score(analyze(nl, w), lab, oracle.Options{})
			if i == 0 {
				first = res
				continue
			}
			if !reflect.DeepEqual(res, first) {
				fail("%s: scorecard at workers=%d differs from workers=%d",
					lab.Design, w, workerCounts[0])
			}
		}
		results = append(results, first)
		if first.MacroF1 < minMacro {
			fail("%s: macro F1 %.4f below -min-macro %.4f", lab.Design, first.MacroF1, minMacro)
		}

		mutOK := 0
		for _, mutation := range muts {
			if err := checkMutation(nl, lab, first, mutation, seed, workerCounts[0]); err != nil {
				fail("%s/%s: %v", lab.Design, mutation.Name, err)
			} else {
				mutOK++
			}
		}
		line := fmt.Sprintf("%-14s macroF1=%.4f words=%.2f", lab.Design, first.MacroF1, first.Words.Recall)
		if first.Trojan != nil {
			line += fmt.Sprintf(" trojanF1=%.2f", first.Trojan.F1)
		}
		if len(muts) > 0 {
			line += fmt.Sprintf(" mutations=%d/%d", mutOK, len(muts))
		}
		fmt.Println(line)
	}

	if out != "" {
		if err := writeResults(out, results); err != nil {
			return err
		}
		fmt.Println("wrote", out)
	}
	if baseline != "" && bless {
		if err := writeResults(baseline, results); err != nil {
			return err
		}
		fmt.Println("blessed", baseline)
	} else if baseline != "" {
		base, err := readBaseline(baseline)
		if err != nil {
			return err
		}
		if base == nil {
			fmt.Printf("no baseline at %s (run revcheck -bless to record one)\n", baseline)
		} else {
			for _, reg := range oracle.CompareBaseline(results, filterBaseline(base, names), eps) {
				fail("baseline: %s", reg)
			}
		}
	}

	if len(failures) > 0 {
		sort.Strings(failures)
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL:", f)
		}
		return fmt.Errorf("%d conformance failure(s)", len(failures))
	}
	fmt.Println("conformance OK")
	return nil
}

func parseWorkers(workerCSV string) ([]int, error) {
	var workerCounts []int
	for _, f := range strings.Split(workerCSV, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -workers value %q", f)
		}
		workerCounts = append(workerCounts, w)
	}
	if len(workerCounts) == 0 {
		return nil, fmt.Errorf("-workers must name at least one count")
	}
	return workerCounts, nil
}

func analyze(nl *netlist.Netlist, workerCount int) *core.Report {
	opt := core.Options{Workers: workerCount}
	opt.Overlap.Sliceable = true
	return core.Analyze(nl, opt)
}

// checkMutation applies one mutation and verifies its invariants, mirroring
// the checks in internal/oracle/mutate's own tests.
func checkMutation(nl *netlist.Netlist, lab *gen.Labels, parentRes *oracle.Result,
	mutation mutate.Mutation, seed int64, workerCount int) error {
	mut, err := mutation.Apply(nl, lab, seed)
	if err != nil {
		return err
	}
	refNL := mut.RefNetlist
	var refRes *oracle.Result
	if refNL == nil {
		refNL = nl
		refRes = parentRes
	} else {
		refRes = oracle.Score(analyze(refNL, workerCount), mut.RefLabels, oracle.Options{})
	}
	mutFP, refFP := mut.Netlist.Fingerprint(), refNL.Fingerprint()
	if mut.SameFingerprint && mutFP != refFP {
		return fmt.Errorf("fingerprint changed: %s != %s", mutFP[:12], refFP[:12])
	}
	if mut.ChangedFingerprint && mutFP == refFP {
		return fmt.Errorf("fingerprint unexpectedly preserved")
	}
	mutRes := oracle.Score(analyze(mut.Netlist, workerCount), mut.Labels, oracle.Options{})
	if mut.ExactScores {
		if !reflect.DeepEqual(mutRes, refRes) {
			return fmt.Errorf("scorecard diverged from reference")
		}
		return nil
	}
	if regs := oracle.CompareBaseline([]*oracle.Result{mutRes}, []*oracle.Result{refRes}, mut.ScoreEps); len(regs) > 0 {
		return fmt.Errorf("mutant below reference: %s", strings.Join(regs, "; "))
	}
	if regs := oracle.CompareBaseline([]*oracle.Result{refRes}, []*oracle.Result{mutRes}, mut.ScoreEps); len(regs) > 0 {
		return fmt.Errorf("mutant above reference: %s", strings.Join(regs, "; "))
	}
	return nil
}

func writeResults(path string, results []*oracle.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := oracle.WriteResults(f, results); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readBaseline returns nil without error when the baseline file does not
// exist yet, so a fresh checkout can run revcheck before blessing one.
func readBaseline(path string) ([]*oracle.Result, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return oracle.ReadResults(f)
}

// filterBaseline keeps only the baseline entries for the articles this run
// scored, so -articles subsets do not trip "missing from results".
func filterBaseline(base []*oracle.Result, names []string) []*oracle.Result {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[strings.TrimSpace(n)] = true
	}
	var out []*oracle.Result
	for _, b := range base {
		if want[b.Design] {
			out = append(out, b)
		}
	}
	return out
}
