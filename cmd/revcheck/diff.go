package main

// The differential gate (-diff): every golden/suspect trojan article pair
// — gate-level and LUT-mapped — is pushed through the structural diff
// matcher, which must recover the injected trojan gate set EXACTLY: the
// suspect-side added set equals the labeled trojan set, with no removed
// and no retyped nodes (the trojan articles splice logic in; they do not
// delete or rewire existing gates). The self-diff of each golden netlist
// must be empty. For context the gate also reports how the analysis-based
// trojan oracle scores against the same label, but only the diff is gated
// — the oracle is a heuristic, the diff is exact.

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"netlistre/internal/gen"
	"netlistre/internal/netlist"
	"netlistre/internal/oracle"
)

func runDiff(articleCSV string) error {
	pairs := gen.TrojanArticlePairs()
	if articleCSV != "" {
		want := make(map[string]bool)
		for _, n := range strings.Split(articleCSV, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var kept [][2]string
		for _, p := range pairs {
			if want[p[0]] || want[p[1]] {
				kept = append(kept, p)
			}
		}
		pairs = kept
	}
	if len(pairs) == 0 {
		return fmt.Errorf("-articles matched no trojan pair")
	}

	var failures []string
	fail := func(format string, args ...interface{}) {
		failures = append(failures, fmt.Sprintf(format, args...))
	}

	for _, pair := range pairs {
		goldenName, suspectName := pair[0], pair[1]
		golden, _, err := gen.LabeledArticle(goldenName)
		if err != nil {
			return err
		}
		suspect, lab, err := gen.LabeledArticle(suspectName)
		if err != nil {
			return err
		}

		// Self-diff: a netlist against itself must be identical.
		if self := netlist.DiffNetlists(golden, golden, netlist.DiffOptions{}); !self.Identical() {
			fail("%s: self-diff not identical: +%d -%d ~%d",
				goldenName, len(self.Added), len(self.Removed), len(self.Retyped))
		}

		d := netlist.DiffNetlists(golden, suspect, netlist.DiffOptions{})
		want := append([]netlist.ID(nil), lab.Trojan...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		exact := idSlicesEqual(d.Added, want)
		if !exact {
			fail("%s vs %s: diff added %d nodes, want the %d labeled trojan nodes (missed %d, extra %d)",
				goldenName, suspectName, len(d.Added), len(want),
				len(idSliceSub(want, d.Added)), len(idSliceSub(d.Added, want)))
		}
		if len(d.Removed) > 0 || len(d.Retyped) > 0 {
			fail("%s vs %s: diff reported %d removed and %d retyped nodes; the trojan only adds logic",
				goldenName, suspectName, len(d.Removed), len(d.Retyped))
		}

		// Context line: how the analysis-based oracle does on the same label.
		res := oracle.Score(analyze(suspect, 1), lab, oracle.Options{})
		line := fmt.Sprintf("%-18s diff: added=%d matched=%d passes=%d exact=%t",
			suspectName, len(d.Added), d.Matched, d.Passes, exact)
		if res.Trojan != nil {
			line += fmt.Sprintf("  (oracle trojanF1=%.2f)", res.Trojan.F1)
		}
		fmt.Println(line)
	}

	if len(failures) > 0 {
		sort.Strings(failures)
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL:", f)
		}
		return fmt.Errorf("%d differential failure(s)", len(failures))
	}
	fmt.Println("differential OK")
	return nil
}

func idSlicesEqual(a, b []netlist.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// idSliceSub returns the elements of a not present in b (both sorted).
func idSliceSub(a, b []netlist.ID) []netlist.ID {
	in := make(map[netlist.ID]bool, len(b))
	for _, id := range b {
		in[id] = true
	}
	var out []netlist.ID
	for _, id := range a {
		if !in[id] {
			out = append(out, id)
		}
	}
	return out
}
