// Command benchtab regenerates the tables of the paper's evaluation
// (Section V) on the synthetic test articles.
//
// Usage:
//
//	benchtab              # all tables
//	benchtab -table 3     # one table
package main

import (
	"flag"
	"fmt"
	"os"

	"netlistre"
)

func main() {
	table := flag.Int("table", 0, "table number 2-8 (0 = all)")
	flag.Parse()

	w := os.Stdout
	run := func(n int) {
		switch n {
		case 2:
			netlistre.WriteTable2(w)
		case 3:
			netlistre.WriteTable3(w, netlistre.Table3())
		case 4:
			netlistre.WriteTable4(w, netlistre.Table4())
		case 5:
			netlistre.WriteTable5(w, netlistre.Table5())
		case 6:
			netlistre.WriteTable6(w, netlistre.Table6())
		case 7:
			netlistre.WriteTable7(w, netlistre.Table7())
		case 8:
			rows := netlistre.Table8()
			netlistre.WriteTable8(w, rows)
			fmt.Fprintf(w, "\ntrojan deltas (extra modules in the trojaned design):\n")
			fmt.Fprintf(w, "  evoter: %v\n", netlistre.TrojanDelta(rows[0], rows[1]))
			fmt.Fprintf(w, "  oc8051: %v\n", netlistre.TrojanDelta(rows[2], rows[3]))
		default:
			fmt.Fprintf(os.Stderr, "benchtab: no table %d\n", n)
			os.Exit(1)
		}
		fmt.Fprintln(w)
	}
	if *table != 0 {
		run(*table)
		return
	}
	for n := 2; n <= 8; n++ {
		run(n)
	}
}
