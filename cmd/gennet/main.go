// Command gennet emits the synthetic test articles as structural Verilog
// netlists, so they can be inspected, archived, or fed back into revan.
//
// Usage:
//
//	gennet -article mips16 -o mips16.v
//	gennet -all -dir ./netlists
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"netlistre"
)

func main() {
	var (
		article = flag.String("article", "", "article to emit (see -list)")
		out     = flag.String("o", "", "output file (default stdout)")
		all     = flag.Bool("all", false, "emit every article")
		dir     = flag.String("dir", ".", "output directory for -all")
		format  = flag.String("format", "verilog", "output format: verilog or blif")
		list    = flag.Bool("list", false, "list available articles and exit")
		lutmap  = flag.Bool("lutmap", false, "LUT-map the article before emitting (FPGA-style k-input cells)")
	)
	flag.Parse()
	if *list {
		listArticles(os.Stdout)
		return
	}
	if *format != "verilog" && *format != "blif" {
		fmt.Fprintln(os.Stderr, "gennet: -format must be verilog or blif")
		os.Exit(1)
	}
	emitFormat = *format
	emitLutMap = *lutmap

	if *all {
		ext := ".v"
		if *format == "blif" {
			ext = ".blif"
		}
		if *lutmap {
			ext = "-lut" + ext
		}
		names := netlistre.TestArticleNames()
		for _, extra := range extraArticles {
			names = append(names, extra[0])
		}
		for _, name := range names {
			path := filepath.Join(*dir, name+ext)
			if err := emit(name, path); err != nil {
				fmt.Fprintln(os.Stderr, "gennet:", err)
				os.Exit(1)
			}
			fmt.Println("wrote", path)
		}
		return
	}
	if *article == "" {
		fmt.Fprintln(os.Stderr, "gennet: -article or -all required")
		os.Exit(1)
	}
	if !knownArticle(*article) {
		fmt.Fprintf(os.Stderr, "gennet: unknown article %q; available articles:\n", *article)
		listArticles(os.Stderr)
		os.Exit(1)
	}
	if err := emit(*article, *out); err != nil {
		fmt.Fprintln(os.Stderr, "gennet:", err)
		os.Exit(1)
	}
}

var (
	emitFormat = "verilog"
	emitLutMap = false
)

// extraArticles are the case-study netlists emitted alongside the Table 2
// set; descriptions mirror their builders in the root package.
var extraArticles = [][2]string{
	{"bigsoc", "seven-core SoC case study (Section V-C)"},
	{"evoter-trojan", "eVoter with key-sequence backdoor"},
	{"oc8051-trojan", "oc8051 with XOR kill switch"},
}

func listArticles(w io.Writer) {
	for _, name := range netlistre.TestArticleNames() {
		fmt.Fprintf(w, "%-14s  %s\n", name, netlistre.TestArticleDescription(name))
	}
	for _, extra := range extraArticles {
		fmt.Fprintf(w, "%-14s  %s\n", extra[0], extra[1])
	}
}

func knownArticle(name string) bool {
	for _, n := range netlistre.TestArticleNames() {
		if n == name {
			return true
		}
	}
	for _, extra := range extraArticles {
		if extra[0] == name {
			return true
		}
	}
	return false
}

func emit(name, path string) error {
	var nl *netlistre.Netlist
	var err error
	switch name {
	case "bigsoc":
		nl = netlistre.BigSoC()
	case "evoter-trojan":
		nl = netlistre.EVoterTrojaned()
	case "oc8051-trojan":
		nl = netlistre.OC8051Trojaned()
	default:
		nl, err = netlistre.TestArticle(name)
		if err != nil {
			return err
		}
	}
	if emitLutMap {
		nl = netlistre.LutMap(nl)
	}
	w := os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if emitFormat == "blif" {
		return nl.WriteBLIF(w)
	}
	return nl.WriteVerilog(w)
}
