// Command gennet emits the synthetic test articles as structural Verilog
// netlists, so they can be inspected, archived, or fed back into revan.
//
// Usage:
//
//	gennet -article mips16 -o mips16.v
//	gennet -all -dir ./netlists
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"netlistre"
)

func main() {
	var (
		article = flag.String("article", "", "article to emit (see -list)")
		out     = flag.String("o", "", "output file (default stdout)")
		all     = flag.Bool("all", false, "emit every article")
		dir     = flag.String("dir", ".", "output directory for -all")
		format  = flag.String("format", "verilog", "output format: verilog or blif")
		list    = flag.Bool("list", false, "list available articles and exit")
	)
	flag.Parse()
	if *list {
		for _, name := range netlistre.TestArticleNames() {
			fmt.Printf("%-14s  %s\n", name, netlistre.TestArticleDescription(name))
		}
		fmt.Printf("%-14s  %s\n", "bigsoc", "seven-core SoC case study (Section V-C)")
		fmt.Printf("%-14s  %s\n", "evoter-trojan", "eVoter with key-sequence backdoor")
		fmt.Printf("%-14s  %s\n", "oc8051-trojan", "oc8051 with XOR kill switch")
		return
	}
	if *format != "verilog" && *format != "blif" {
		fmt.Fprintln(os.Stderr, "gennet: -format must be verilog or blif")
		os.Exit(1)
	}
	emitFormat = *format

	if *all {
		ext := ".v"
		if *format == "blif" {
			ext = ".blif"
		}
		names := append(netlistre.TestArticleNames(),
			"bigsoc", "evoter-trojan", "oc8051-trojan")
		for _, name := range names {
			path := filepath.Join(*dir, name+ext)
			if err := emit(name, path); err != nil {
				fmt.Fprintln(os.Stderr, "gennet:", err)
				os.Exit(1)
			}
			fmt.Println("wrote", path)
		}
		return
	}
	if *article == "" {
		fmt.Fprintln(os.Stderr, "gennet: -article or -all required")
		os.Exit(1)
	}
	if err := emit(*article, *out); err != nil {
		fmt.Fprintln(os.Stderr, "gennet:", err)
		os.Exit(1)
	}
}

var emitFormat = "verilog"

func emit(name, path string) error {
	var nl *netlistre.Netlist
	var err error
	switch name {
	case "bigsoc":
		nl = netlistre.BigSoC()
	case "evoter-trojan":
		nl = netlistre.EVoterTrojaned()
	case "oc8051-trojan":
		nl = netlistre.OC8051Trojaned()
	default:
		nl, err = netlistre.TestArticle(name)
		if err != nil {
			return err
		}
	}
	w := os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if emitFormat == "blif" {
		return nl.WriteBLIF(w)
	}
	return nl.WriteVerilog(w)
}
