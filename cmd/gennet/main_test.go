package main

import (
	"bytes"
	"strings"
	"testing"

	"netlistre"
)

func TestKnownArticle(t *testing.T) {
	for _, name := range netlistre.TestArticleNames() {
		if !knownArticle(name) {
			t.Errorf("knownArticle(%q) = false", name)
		}
	}
	for _, name := range []string{"bigsoc", "evoter-trojan", "oc8051-trojan"} {
		if !knownArticle(name) {
			t.Errorf("knownArticle(%q) = false", name)
		}
	}
	for _, name := range []string{"", "nope", "MIPS16", "usb "} {
		if knownArticle(name) {
			t.Errorf("knownArticle(%q) = true", name)
		}
	}
}

// TestListArticles: the list printed on -list (and on an unknown -article)
// names every article knownArticle accepts.
func TestListArticles(t *testing.T) {
	var buf bytes.Buffer
	listArticles(&buf)
	out := buf.String()
	names := netlistre.TestArticleNames()
	names = append(names, "bigsoc", "evoter-trojan", "oc8051-trojan")
	for _, name := range names {
		if !strings.Contains(out, name) {
			t.Errorf("article list is missing %q:\n%s", name, out)
		}
	}
}
