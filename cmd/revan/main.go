// Command revan (Reverse-Engineering Analyzer) runs the full inference
// portfolio on a gate-level netlist and prints the inferred module report.
//
// Usage:
//
//	revan -in design.v                 # analyze a structural Verilog netlist
//	revan -article oc8051              # analyze a built-in synthetic article
//	revan -article bigsoc -simplify -partition auto
//	revan -in design.v -objective min -target 0.6
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"netlistre"
)

// exitDegraded is returned when the analysis completed but the report is
// degraded (timed out, canceled, or a stage failed): the output is usable
// but partial, which scripts may want to distinguish from success (0) and
// hard errors (1).
const exitDegraded = 3

// exitRTLCheck is returned when -emit-rtl wrote the decompiled RTL but
// the round-trip equivalence self-check did not pass.
const exitRTLCheck = 4

func main() {
	var (
		inFile    = flag.String("in", "", "structural Verilog netlist to analyze")
		blifLuts  = flag.Bool("blif-luts", false, "read every BLIF cover table as a native k-input LUT cell (for foreign LUT-mapped FPGA BLIF without '# lut' markers)")
		article   = flag.String("article", "", "built-in synthetic article (see -list)")
		list      = flag.Bool("list", false, "list built-in articles and exit")
		doSimp    = flag.Bool("simplify", false, "run structural simplification first")
		partFlag  = flag.String("partition", "", "comma-separated reset inputs to partition by, or 'auto' for BigSoC")
		objective = flag.String("objective", "max", "overlap resolution objective: max (coverage) or min (modules)")
		target    = flag.Float64("target", 0.5, "coverage target fraction for -objective min")
		basic     = flag.Bool("basic-ilp", false, "use the basic (non-sliceable) ILP formulation")
		skipQBF   = flag.Bool("skip-modmatch", false, "skip QBF word-operator matching")
		verbose   = flag.Bool("v", false, "list every resolved module")
		cands     = flag.Bool("candidates", false, "also report unknown-bitslice candidate modules")
		dotFile   = flag.String("dot", "", "write the abstracted netlist as Graphviz DOT to this file")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON instead of text")
		workers   = flag.Int("workers", 0, "pipeline worker budget (0 = GOMAXPROCS, 1 = serial)")
		trace     = flag.Bool("trace", false, "print live per-stage progress to stderr (the final stage table is always in the report)")
		timeout   = flag.Duration("timeout", 0, "whole-run analysis budget (0 = none); a timed-out run prints a partial report and exits 3")
		stCache   = flag.Int("stage-cache", 0, "memoize stage artifacts in an in-process store of this many entries (0 disables); repeated analyses in one run, e.g. -partition, resume from it")
		fprint    = flag.Bool("fingerprint", false, "print the netlist's canonical SHA-256 fingerprint and exit")
		emitRTL   = flag.String("emit-rtl", "", "decompile the analyzed design to word-level Verilog at this path; the emission is self-checked for round-trip equivalence and a failed check exits 4")
	)
	flag.Parse()

	if *list {
		for _, name := range netlistre.TestArticleNames() {
			fmt.Printf("%-8s  %s\n", name, netlistre.TestArticleDescription(name))
		}
		fmt.Printf("%-8s  %s\n", "bigsoc", "seven-core SoC case study (Section V-C)")
		fmt.Printf("%-8s  %s\n", "evoter-trojan", "eVoter with key-sequence backdoor")
		fmt.Printf("%-8s  %s\n", "oc8051-trojan", "oc8051 with XOR kill switch")
		return
	}

	nl, err := loadNetlist(*inFile, *article, *blifLuts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "revan:", err)
		os.Exit(1)
	}
	if err := nl.Check(); err != nil {
		fmt.Fprintln(os.Stderr, "revan: invalid netlist:", err)
		os.Exit(1)
	}
	if *fprint {
		fmt.Println(nl.Fingerprint())
		return
	}

	if *doSimp {
		before := nl.Stats()
		res := netlistre.Simplify(nl)
		nl = res.Netlist
		after := nl.Stats()
		fmt.Printf("simplification: %d -> %d combinational elements (%.0f%% reduction)\n\n",
			before.Gates, after.Gates, 100*(1-float64(after.Gates)/float64(before.Gates)))
	}

	opt := netlistre.Options{SkipModMatch: *skipQBF, KeepCandidates: *cands,
		Workers: *workers, Timeout: *timeout}
	var stages *netlistre.StageStore
	if *stCache > 0 {
		stages = netlistre.NewStageStore(*stCache)
		opt.StageStore = stages
	}
	if *trace {
		opt.Progress = func(ev netlistre.StageEvent) {
			if ev.Done {
				fmt.Fprintf(os.Stderr, "[%12v] done  %-10s (%v, %d produced, %s)\n",
					ev.Start+ev.Duration, ev.Stage, ev.Duration, ev.Modules, ev.Provenance)
			} else {
				fmt.Fprintf(os.Stderr, "[%12v] start %s\n", ev.Start, ev.Stage)
			}
		}
	}
	if *objective == "min" {
		opt.Overlap.Objective = netlistre.MinModules
	}
	opt.Overlap.Sliceable = !*basic

	if *partFlag != "" {
		if *emitRTL != "" {
			fmt.Fprintln(os.Stderr, "revan: -emit-rtl cannot be combined with -partition")
			os.Exit(1)
		}
		resets := strings.Split(*partFlag, ",")
		if *partFlag == "auto" {
			resets = netlistre.BigSoCResetNames()
		}
		summary, err := netlistre.PartitionByResets(nl, resets)
		if err != nil {
			fmt.Fprintln(os.Stderr, "revan:", err)
			os.Exit(1)
		}
		fmt.Printf("partitioned into %d cores (%d multi-owned gates, %d unowned)\n\n",
			len(summary.Cores), summary.MultiOwned, summary.Unowned)
		degraded := false
		for _, c := range summary.Cores {
			fmt.Printf("=== core %s (%d latches, %d elements) ===\n", c.Name, c.Latches, c.Elements)
			degraded = analyzeOne(c.Netlist, opt, *target, *verbose, "", *jsonOut).Degraded || degraded
			fmt.Println()
		}
		printStageCacheStats(stages)
		if degraded {
			os.Exit(exitDegraded)
		}
		return
	}
	rep := analyzeOne(nl, opt, *target, *verbose, *dotFile, *jsonOut)
	printStageCacheStats(stages)
	if *emitRTL != "" {
		if err := decompileTo(nl, rep, *emitRTL); err != nil {
			fmt.Fprintln(os.Stderr, "revan:", err)
			os.Exit(exitRTLCheck)
		}
	}
	if rep.Degraded {
		os.Exit(exitDegraded)
	}
}

// decompileTo writes the word-level Verilog for an analyzed design and
// runs the round-trip equivalence self-check.
func decompileTo(nl *netlistre.Netlist, rep *netlistre.Report, path string) error {
	er, eq, err := netlistre.DecompileRTL(nl, rep)
	if er != nil {
		if werr := os.WriteFile(path, er.Verilog, 0o644); werr != nil {
			return werr
		}
	}
	if err != nil {
		return fmt.Errorf("decompile: %w", err)
	}
	st := er.Stats
	fmt.Printf("\ndecompiled RTL written to %s\n", path)
	fmt.Printf("  %d instances, %d always blocks, %d residual gates, %d residual latches, %d words\n",
		st.Instances, st.AlwaysBlocks, st.ResidualGates, st.ResidualLatches, st.Words)
	fmt.Printf("  self-check: %v\n", eq)
	if !eq.Equivalent {
		return fmt.Errorf("round-trip equivalence self-check failed: %v", eq)
	}
	return nil
}

// printStageCacheStats summarizes -stage-cache effectiveness on stderr so
// it never disturbs the report stream (text or JSON) on stdout.
func printStageCacheStats(stages *netlistre.StageStore) {
	if stages == nil {
		return
	}
	st := stages.Stats()
	fmt.Fprintf(os.Stderr, "stage cache: %d hits, %d misses, %d evictions, %d entries\n",
		st.Hits, st.Misses, st.Evictions, st.Entries)
}

func loadNetlist(inFile, article string, blifLuts bool) (*netlistre.Netlist, error) {
	switch {
	case inFile != "":
		f, err := os.Open(inFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if strings.HasSuffix(inFile, ".blif") {
			return netlistre.ReadBLIFOpts(f, netlistre.BLIFOptions{Luts: blifLuts})
		}
		return netlistre.ReadVerilog(f)
	case article == "bigsoc":
		return netlistre.BigSoC(), nil
	case article == "evoter-trojan":
		return netlistre.EVoterTrojaned(), nil
	case article == "oc8051-trojan":
		return netlistre.OC8051Trojaned(), nil
	case article != "":
		return netlistre.TestArticle(article)
	}
	return nil, fmt.Errorf("one of -in or -article is required (try -list)")
}

// analyzeOne analyzes one netlist, prints its report, and returns the
// report for further processing (degraded-exit, -emit-rtl).
func analyzeOne(nl *netlistre.Netlist, opt netlistre.Options, target float64, verbose bool, dotFile string, jsonOut bool) *netlistre.Report {
	if opt.Overlap.Objective == netlistre.MinModules {
		stats := nl.Stats()
		opt.Overlap.CoverageTarget = int(target * float64(stats.Gates+stats.Latches))
	}
	rep := netlistre.Analyze(nl, opt)
	var err error
	if jsonOut {
		err = netlistre.WriteJSONReport(os.Stdout, rep)
	} else {
		err = netlistre.WriteReport(os.Stdout, rep)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "revan:", err)
		os.Exit(1)
	}
	if verbose {
		fmt.Println("\nall resolved modules:")
		for _, m := range rep.Resolved {
			fmt.Printf("  %-28s %5d elements\n", m.Name, m.Size())
		}
	}
	if dotFile != "" {
		f, err := os.Create(dotFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "revan:", err)
			os.Exit(1)
		}
		if err := netlistre.WriteAbstractDOT(f, nl, rep.Resolved); err != nil {
			fmt.Fprintln(os.Stderr, "revan:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("\nabstracted netlist written to %s\n", dotFile)
	}
	if len(rep.Candidates) > 0 {
		fmt.Printf("\ncandidate modules for manual analysis (Section II-B.1): %d\n", len(rep.Candidates))
		for _, m := range rep.Candidates {
			fmt.Printf("  %-28s %5d elements  fn=%s\n", m.Name, m.Size(), m.Attr["function"])
		}
	}
	return rep
}
