package main

// TestSessionSmoke is the scripted session walkthrough run by
// `make session-smoke`: boot the daemon, analyze an article as a job,
// bind a session to it, explore (blocks, expand, cone), re-run a stage
// from the warm stage store, upload a trojaned revision and diff it,
// then deliver SIGTERM and require a clean drain. It is the end-to-end
// counterpart of the unit battery in internal/server.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// smokeJSON issues one request and decodes the response, failing the
// test on transport errors or an unexpected status.
func smokeJSON(t *testing.T, method, rawURL, body string, wantCode int, out interface{}) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, rawURL, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, rawURL, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s = %d, want %d: %.300s", method, rawURL, resp.StatusCode, wantCode, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: bad JSON: %v: %.300s", method, rawURL, err, raw)
		}
	}
}

func TestSessionSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-queue", "8",
			"-session-ttl", "1m", "-session-max", "4"},
			&stdout, &stderr, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("server did not come up\nstderr: %s", stderr.String())
	}
	base := "http://" + addr

	// Analyze an article as an async job and wait for it.
	var job struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	smokeJSON(t, http.MethodPost, base+"/v1/jobs", `{"article": "evoter"}`,
		http.StatusAccepted, &job)
	deadline := time.Now().Add(60 * time.Second)
	for job.Status != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", job.Status)
		}
		if job.Status == "failed" || job.Status == "degraded" {
			t.Fatalf("seed job finished %q", job.Status)
		}
		time.Sleep(50 * time.Millisecond)
		smokeJSON(t, http.MethodGet, base+"/v1/jobs/"+job.ID, "", http.StatusOK, &job)
	}

	// Bind a session to the finished job.
	var sess struct {
		ID        string `json:"id"`
		Revisions []struct {
			Name     string `json:"name"`
			Analyzed bool   `json:"analyzed"`
		} `json:"revisions"`
	}
	smokeJSON(t, http.MethodPost, base+"/v1/sessions",
		fmt.Sprintf(`{"job_id": %q}`, job.ID), http.StatusCreated, &sess)
	if sess.ID == "" {
		t.Fatal("session has no ID")
	}
	sURL := base + "/v1/sessions/" + sess.ID

	// Explore: list recovered blocks, expand the first one.
	var blocks struct {
		Blocks []struct {
			Index    int    `json:"index"`
			Type     string `json:"type"`
			Elements int    `json:"elements"`
		} `json:"blocks"`
	}
	smokeJSON(t, http.MethodGet, sURL+"/blocks", "", http.StatusOK, &blocks)
	if len(blocks.Blocks) > 0 {
		var detail struct {
			Members []struct {
				ID int `json:"id"`
			} `json:"members"`
		}
		smokeJSON(t, http.MethodGet, sURL+"/blocks/0", "", http.StatusOK, &detail)
		if len(detail.Members) != blocks.Blocks[0].Elements {
			t.Errorf("block 0 expanded to %d members, summary said %d",
				len(detail.Members), blocks.Blocks[0].Elements)
		}
	}

	// Cone query rooted at the first primary input.
	var ports struct {
		Inputs []struct {
			Name string `json:"name"`
		} `json:"inputs"`
	}
	smokeJSON(t, http.MethodGet, sURL+"/ports", "", http.StatusOK, &ports)
	if len(ports.Inputs) == 0 {
		t.Fatal("article reports no inputs")
	}
	var cone struct {
		Nodes []struct {
			Depth int `json:"depth"`
		} `json:"nodes"`
	}
	smokeJSON(t, http.MethodGet,
		sURL+"/cone?net="+url.QueryEscape(ports.Inputs[0].Name)+"&dir=fanout&depth=3&limit=100",
		"", http.StatusOK, &cone)
	if len(cone.Nodes) == 0 {
		t.Error("fan-out cone of a primary input is empty")
	}

	// Stage re-run against the warm stage store: everything must answer
	// from cache, nothing recomputed.
	var rerun struct {
		Trace []struct {
			Stage      string `json:"stage"`
			Provenance string `json:"provenance"`
		} `json:"trace"`
	}
	smokeJSON(t, http.MethodPost, sURL+"/rerun", `{}`, http.StatusOK, &rerun)
	if len(rerun.Trace) == 0 {
		t.Fatal("rerun returned no stage trace")
	}
	for _, st := range rerun.Trace {
		if st.Provenance != "cached" {
			t.Errorf("stage %s re-ran with provenance %q, want cached", st.Stage, st.Provenance)
		}
	}

	// Differential mode: upload the trojaned twin and diff it.
	smokeJSON(t, http.MethodPost, sURL+"/revisions/suspect",
		`{"article": "evoter-trojan"}`, http.StatusCreated, nil)
	var diff struct {
		Identical    bool `json:"identical"`
		Added        []struct{}
		Removed      []struct{}
		SuspectGates []struct{} `json:"suspect_gates"`
	}
	smokeJSON(t, http.MethodPost, sURL+"/diff",
		`{"golden": "main", "suspect": "suspect"}`, http.StatusOK, &diff)
	if diff.Identical {
		t.Error("diff against the trojaned twin reported identical")
	}
	if len(diff.Added) == 0 || len(diff.SuspectGates) != len(diff.Added) {
		t.Errorf("diff found %d added nodes, %d suspect gates; want a non-empty equal pair",
			len(diff.Added), len(diff.SuspectGates))
	}
	if len(diff.Removed) != 0 {
		t.Errorf("diff removed %d nodes from a pure-insertion trojan", len(diff.Removed))
	}

	// Session metrics made it to the exporter.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"revand_sessions_created_total 1", "revand_session_diffs_total 1"} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Drain.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d after SIGTERM, want 0\nstderr: %s", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	if !strings.Contains(stdout.String(), "drained") {
		t.Errorf("shutdown log missing drain message:\n%s", stdout.String())
	}
}
