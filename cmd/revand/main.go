// Command revand is the netlist analysis daemon: the revan portfolio
// behind an HTTP/JSON API with a bounded job queue, a content-addressed
// report cache, and Prometheus metrics (see internal/server for the
// endpoint reference).
//
// Usage:
//
//	revand -addr :8080
//	revand -addr :8080 -workers 4 -queue 128 -cache 512 -timeout 2m
//	revand -addr :8080 -stage-cache 2048   # larger stage artifact store
//	revand -addr :8080 -fleet -peers http://10.0.0.7:8080,http://10.0.0.8:8080
//
// With -fleet, netlists of at least -fleet-min elements are reset-tree
// partitioned and the partitions dispatched as jobs to the -peers workers
// (with retries, hedging, and circuit breakers); the merged report is
// byte-identical to a single-process run, and a dead fleet degrades to
// local execution. See the README "Fleet mode" section.
//
// SIGINT/SIGTERM starts a graceful shutdown: the listener stops accepting
// requests, queued and running jobs drain (bounded by -drain-timeout,
// after which in-flight analyses are canceled cooperatively and finish as
// degraded reports), and the process exits 0.
//
// Exit codes: 0 after a clean (signal-driven) shutdown, 1 on a
// startup or serve failure, 2 on flag misuse.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"netlistre/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is main with its environment injected for tests: ready (if non-nil)
// receives the bound listen address once the server is accepting.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("revand", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", 0, "queue worker count (0 = min(GOMAXPROCS, 4))")
		queueDepth   = fs.Int("queue", 64, "job queue depth; a full queue rejects submissions with 503")
		cacheEntries = fs.Int("cache", 256, "report cache entries (negative disables the cache)")
		stageCache   = fs.Int("stage-cache", 512, "stage artifact store entries shared across analyses (negative disables)")
		timeout      = fs.Duration("timeout", 0, "default per-analysis budget when the request sets none (0 = unbounded)")
		syncLimit    = fs.Int("sync-limit", 20000, "max netlist elements on POST /v1/analyze; larger designs must use /v1/jobs (negative disables)")
		maxBody      = fs.Int64("max-body", 32<<20, "max request body bytes")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for queued jobs before canceling them")
		readTimeout  = fs.Duration("read-timeout", 2*time.Minute, "max time to read a full request (0 disables; headers are always bounded separately)")
		fleetMode    = fs.Bool("fleet", false, "enable fleet coordinator mode: large netlists are partitioned and dispatched to -peers")
		peerList     = fs.String("peers", "", "comma-separated peer revand base URLs (e.g. http://10.0.0.7:8080,http://10.0.0.8:8080)")
		fleetMin     = fs.Int("fleet-min", 2000, "smallest netlist (gates+latches) the fleet path partitions; smaller requests stay single-process")
		sessionTTL   = fs.Duration("session-ttl", 15*time.Minute, "idle lifetime of an exploration session")
		sessionMax   = fs.Int("session-max", 64, "max live exploration sessions; the least recently used is evicted past the cap (negative = unbounded)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *workers < 0 || *queueDepth < 1 {
		fmt.Fprintln(stderr, "revand: -workers must be >= 0 and -queue >= 1")
		return 2
	}
	var peers []string
	for _, p := range strings.Split(*peerList, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, strings.TrimRight(p, "/"))
		}
	}
	if len(peers) > 0 && !*fleetMode {
		fmt.Fprintln(stderr, "revand: -peers requires -fleet")
		return 2
	}
	cfg := server.Config{
		QueueWorkers:      *workers,
		QueueDepth:        *queueDepth,
		CacheEntries:      *cacheEntries,
		StageCacheEntries: *stageCache,
		MaxRequestBytes:   *maxBody,
		DefaultTimeout:    *timeout,
		MaxSyncElements:   *syncLimit,
		Fleet:             *fleetMode,
		Peers:             peers,
		FleetMinElements:  *fleetMin,
		SessionTTL:        *sessionTTL,
		MaxSessions:       *sessionMax,
	}

	logger := log.New(stdout, "revand: ", log.LstdFlags)
	srv := server.New(cfg)
	// ReadTimeout bounds slow-loris request bodies; WriteTimeout is left
	// unset deliberately — synchronous /v1/analyze responses legitimately
	// take minutes on large designs, and cutting the write would turn a
	// finished analysis into a client-visible failure.
	httpSrv := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "revand: listen %s: %v\n", *addr, err)
		return 1
	}
	logger.Printf("serving on %s (queue depth %d, cache %d entries, stage cache %d entries)",
		ln.Addr(), *queueDepth, *cacheEntries, *stageCache)
	if *fleetMode {
		logger.Printf("fleet mode: %d peers, min %d elements", len(peers), *fleetMin)
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigs)

	select {
	case sig := <-sigs:
		logger.Printf("received %v, draining (timeout %v)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		// Stop the listener and wait for active requests, then drain the
		// job queue through the portfolio's cooperative cancellation.
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Printf("http shutdown: %v", err)
		}
		if err := srv.Shutdown(ctx); err != nil {
			logger.Printf("queue drain cut short: %v (in-flight jobs finished degraded)", err)
		}
		logger.Printf("drained, exiting")
		return 0
	case err := <-serveErr:
		if errors.Is(err, http.ErrServerClosed) {
			return 0
		}
		fmt.Fprintf(stderr, "revand: serve: %v\n", err)
		return 1
	}
}
