package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestRunServesAndDrainsOnSIGTERM boots the daemon on an ephemeral port,
// performs a real analysis over HTTP, then delivers SIGTERM and expects a
// clean drain with exit code 0.
func TestRunServesAndDrainsOnSIGTERM(t *testing.T) {
	var stdout, stderr bytes.Buffer
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1", "-queue", "4"},
			&stdout, &stderr, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("server did not come up\nstderr: %s", stderr.String())
	}

	resp, err := http.Post("http://"+addr+"/v1/analyze", "application/json",
		strings.NewReader(`{"article":"evoter"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %d: %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte(`"design"`)) {
		t.Errorf("response does not look like a JSON report: %.200s", body)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d after SIGTERM, want 0\nstderr: %s", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	if !strings.Contains(stdout.String(), "drained") {
		t.Errorf("shutdown log missing drain message:\n%s", stdout.String())
	}
}

func TestRunFlagValidation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-queue", "0"}, &stdout, &stderr, nil); code != 2 {
		t.Errorf("-queue 0: exit %d, want 2", code)
	}
	if code := run([]string{"-nonsense"}, &stdout, &stderr, nil); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code := run([]string{"-peers", "http://127.0.0.1:9"}, &stdout, &stderr, nil); code != 2 {
		t.Errorf("-peers without -fleet: exit %d, want 2", code)
	}
}

// TestRunFleetStartup boots a fleet coordinator and checks the mode is
// reported; functional fleet behavior is covered by internal/server.
func TestRunFleetStartup(t *testing.T) {
	var stdout, stderr bytes.Buffer
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1",
			"-fleet", "-peers", "http://127.0.0.1:1, http://127.0.0.1:2/", "-fleet-min", "500"},
			&stdout, &stderr, ready)
	}()
	select {
	case <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("fleet server did not come up\nstderr: %s", stderr.String())
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d, want 0\nstderr: %s", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("fleet daemon did not exit after SIGTERM")
	}
	if !strings.Contains(stdout.String(), "fleet mode: 2 peers, min 500 elements") {
		t.Errorf("startup log missing fleet line:\n%s", stdout.String())
	}
}

func TestRunListenFailure(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-addr", "256.0.0.1:99999"}, &stdout, &stderr, nil); code != 1 {
		t.Errorf("bad address: exit %d, want 1", code)
	}
}
