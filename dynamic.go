package netlistre

import (
	"context"

	"netlistre/internal/dynamic"
	"netlistre/internal/netlist"
)

// Trace records per-cycle node values from a simulation run; it powers the
// dynamic (simulation-based) analyses of Section VI-B.4: locating where
// known operand/result value sequences surface in an unknown design.
type Trace = dynamic.Trace

// WordMatch is the result of locating a value sequence in a trace.
type WordMatch = dynamic.WordMatch

// RecordTrace simulates nl from the all-zero state, applying stimuli[t] at
// cycle t, and records every node's value per cycle.
func RecordTrace(nl *Netlist, stimuli []map[netlist.ID]bool) *Trace {
	return dynamic.Record(nl, stimuli)
}

// RecordTraceContext is RecordTrace with cooperative cancellation: the
// context is polled once per simulated cycle and the trace is truncated to
// the cycles completed before cancellation.
func RecordTraceContext(ctx context.Context, nl *Netlist, stimuli []map[netlist.ID]bool) *Trace {
	return dynamic.RecordContext(ctx, nl, stimuli)
}
