package netlistre

import (
	"bytes"
	"strings"
	"testing"
)

func buildSmallDesign() *Netlist {
	nl := NewNetlist("small")
	var a, b []ID
	for i := 0; i < 4; i++ {
		a = append(a, nl.AddInput("a"+string(rune('0'+i))))
		b = append(b, nl.AddInput("b"+string(rune('0'+i))))
	}
	carry := nl.AddConst(false)
	for i := 0; i < 4; i++ {
		sum := nl.AddGate(Xor, a[i], b[i], carry)
		carry = nl.AddGate(Or,
			nl.AddGate(And, a[i], b[i]),
			nl.AddGate(And, b[i], carry),
			nl.AddGate(And, carry, a[i]))
		nl.MarkOutput("s"+string(rune('0'+i)), sum)
	}
	nl.MarkOutput("cout", carry)
	return nl
}

func TestPublicAnalyzeAndReport(t *testing.T) {
	nl := buildSmallDesign()
	rep := Analyze(nl, Options{})
	if rep.CountsBefore[TypeAdder] == 0 {
		t.Error("public API did not find the adder")
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"design small", "coverage:", "adder"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestPublicFormatsRoundTrip(t *testing.T) {
	nl := buildSmallDesign()
	var v, blif bytes.Buffer
	if err := nl.WriteVerilog(&v); err != nil {
		t.Fatal(err)
	}
	if err := nl.WriteBLIF(&blif); err != nil {
		t.Fatal(err)
	}
	nv, err := ReadVerilog(&v)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := ReadBLIF(&blif)
	if err != nil {
		t.Fatal(err)
	}
	// Both round-tripped designs still expose a detectable adder.
	for name, n := range map[string]*Netlist{"verilog": nv, "blif": nb} {
		rep := Analyze(n, Options{SkipModMatch: true})
		if rep.CountsBefore[TypeAdder] == 0 {
			t.Errorf("%s round trip lost the adder", name)
		}
	}
}

func TestPartitionByResetsErrors(t *testing.T) {
	nl := buildSmallDesign()
	if _, err := PartitionByResets(nl, []string{"no_such_reset"}); err == nil {
		t.Error("missing reset name did not error")
	}
}

func TestTestArticleRegistry(t *testing.T) {
	names := TestArticleNames()
	if len(names) != 8 {
		t.Fatalf("articles = %v", names)
	}
	for _, n := range names {
		if TestArticleDescription(n) == "" {
			t.Errorf("%s: empty description", n)
		}
	}
	if _, err := TestArticle("bogus"); err == nil {
		t.Error("bogus article did not error")
	}
}

func TestSimplifyPublic(t *testing.T) {
	nl := buildSmallDesign()
	noisy := AddElectricalNoise(nl, 3, 0.5)
	res := Simplify(noisy)
	if res.Netlist.Stats().Gates >= noisy.Stats().Gates {
		t.Error("simplification removed nothing")
	}
	if res.RemovedGates <= 0 {
		t.Error("RemovedGates not reported")
	}
}

func TestTableShapes(t *testing.T) {
	if rows := Table2(); len(rows) != 8 {
		t.Errorf("Table2 rows = %d", len(rows))
	}
	if rows := Table7(); len(rows) != 2 {
		t.Errorf("Table7 rows = %d", len(rows))
	}
	for _, r := range Table7() {
		if r.DeltaGates <= 0 || r.DeltaLatches <= 0 {
			t.Errorf("%s: non-positive trojan delta", r.Name)
		}
	}
}
