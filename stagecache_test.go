package netlistre

// Stage-store acceptance tests: the memoization layer must never change
// what the portfolio computes. A warm run replaying every artifact has to
// produce the same report byte for byte (modulo wall-clock fields and the
// trace's provenance column) as a cold run at any worker count, option
// changes must invalidate exactly the stages whose inputs they feed, and a
// run interrupted by a stage timeout must resume — re-executing only the
// interrupted tail.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"testing"
	"time"
)

// provenanceRE strips the trace provenance fields, which legitimately
// differ between a cold and a warm run of the same analysis.
var provenanceRE = regexp.MustCompile(`,?\s*"provenance": "[a-z]+"`)

// jsonTimingRE matches the wall-clock JSON fields.
var jsonTimingRE = regexp.MustCompile(`"(runtime_ms|start_ms|duration_ms)": [0-9.eE+-]+`)

// canonicalJSON renders a report with wall-clock and provenance
// normalized away, leaving only the semantic content.
func canonicalJSON(t *testing.T, rep *Report) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteJSONReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	s := jsonTimingRE.ReplaceAllString(buf.String(), `"$1": 0`)
	return provenanceRE.ReplaceAllString(s, "")
}

// provenanceByStage indexes a report's trace by stage name.
func provenanceByStage(rep *Report) map[string]StageProvenance {
	m := make(map[string]StageProvenance, len(rep.Trace))
	for _, st := range rep.Trace {
		m[st.Name] = st.Provenance
	}
	return m
}

// TestStageCacheWarmDeterminism is the memoization soundness check: for
// serial and parallel schedules, a cold run with a fresh store and a warm
// run replaying from it must produce identical reports, and every warm
// stage must carry cached provenance.
func TestStageCacheWarmDeterminism(t *testing.T) {
	nl, err := TestArticle("usb")
	if err != nil {
		t.Fatal(err)
	}
	base := Analyze(nl, Options{}) // no store at all: the reference output
	want := canonicalJSON(t, base)

	for _, workers := range []int{1, 4} {
		store := NewStageStore(0)
		opt := Options{Workers: workers, StageStore: store}

		cold := Analyze(nl, opt)
		if got := canonicalJSON(t, cold); got != want {
			t.Errorf("workers=%d: cold run with store differs from storeless run\n--- cold ---\n%s\n--- reference ---\n%s",
				workers, got, want)
		}
		for name, p := range provenanceByStage(cold) {
			if p != StageRan {
				t.Errorf("workers=%d: cold stage %s provenance = %v, want ran", workers, name, p)
			}
		}

		warm := Analyze(nl, opt)
		if got := canonicalJSON(t, warm); got != want {
			t.Errorf("workers=%d: warm run differs from cold run\n--- warm ---\n%s\n--- reference ---\n%s",
				workers, got, want)
		}
		for name, p := range provenanceByStage(warm) {
			if p != StageCached {
				t.Errorf("workers=%d: warm stage %s provenance = %v, want cached", workers, name, p)
			}
		}
		// Replayed artifacts keep their produced counts, so the warm trace
		// is indistinguishable from the cold one module-for-module.
		for i, st := range warm.Trace {
			if st.Modules != cold.Trace[i].Modules {
				t.Errorf("workers=%d: stage %s modules warm=%d cold=%d",
					workers, st.Name, st.Modules, cold.Trace[i].Modules)
			}
		}
	}
}

// TestStageCacheOptionInvalidation changes a cut-enumeration knob on a
// warm store: the stages that consume it (bitslice and everything
// downstream of it) must re-execute while independent stages still hit.
func TestStageCacheOptionInvalidation(t *testing.T) {
	nl, err := TestArticle("usb")
	if err != nil {
		t.Fatal(err)
	}
	store := NewStageStore(0)
	opt := Options{StageStore: store}
	Analyze(nl, opt) // warm

	opt2 := Options{StageStore: store}
	opt2.Bitslice.Cuts.K = 5 // default is 6: a different cut width changes bitslicing
	rep := Analyze(nl, opt2)
	prov := provenanceByStage(rep)
	for _, name := range []string{"support", "lcg", "counters", "shift"} {
		if prov[name] != StageCached {
			t.Errorf("independent stage %s provenance = %v, want cached", name, prov[name])
		}
	}
	for _, name := range []string{"bitslice", "aggregate", "rams", "registers", "overlap"} {
		if prov[name] != StageRan {
			t.Errorf("invalidated stage %s provenance = %v, want ran", name, prov[name])
		}
	}
}

// TestStageCacheResumeAfterStageTimeout interrupts the extra-pass stage
// with a per-stage budget it cannot meet, then repeats the analysis with a
// fast pass: the repeat must resume from the first run's published
// artifacts, re-executing only the interrupted stage and its dependents.
func TestStageCacheResumeAfterStageTimeout(t *testing.T) {
	nl, err := TestArticle("usb")
	if err != nil {
		t.Fatal(err)
	}
	store := NewStageStore(0)

	// The budget is generous for every built-in stage on the usb article
	// (modmatch, the one slow stage, is skipped) but hopeless for the
	// sleeping extra pass, so exactly one stage times out.
	opt1 := Options{StageStore: store, StageTimeout: 500 * time.Millisecond, SkipModMatch: true}
	opt1.ExtraPasses = append(opt1.ExtraPasses, func(*Netlist) []*Module {
		time.Sleep(2 * time.Second) // well past the stage budget
		return nil
	})
	rep1 := Analyze(nl, opt1)
	if !rep1.Degraded {
		t.Fatal("run with an over-budget extra pass must degrade")
	}
	for _, st := range rep1.Trace {
		switch st.Name {
		case "extra":
			if st.Status != StageTimedOut {
				t.Errorf("extra stage status = %v, want timed out", st.Status)
			}
		default:
			if st.Status != StageOK {
				t.Errorf("stage %s status = %v, want OK", st.Name, st.Status)
			}
		}
	}

	passRuns := 0
	opt2 := Options{StageStore: store, SkipModMatch: true}
	opt2.ExtraPasses = append(opt2.ExtraPasses, func(*Netlist) []*Module {
		passRuns++
		return nil
	})
	rep2 := Analyze(nl, opt2)
	if rep2.Degraded {
		t.Fatal("resumed run must complete un-degraded")
	}
	if passRuns != 1 {
		t.Errorf("fast pass ran %d times, want 1", passRuns)
	}
	prov := provenanceByStage(rep2)
	for name, p := range prov {
		switch name {
		case "extra", "overlap":
			// extra passes are opaque functions (uncacheable), and overlap
			// consumes the extra artifact, so both must re-execute.
			if p != StageRan {
				t.Errorf("stage %s provenance = %v, want ran", name, p)
			}
		default:
			if p != StageCached {
				t.Errorf("stage %s provenance = %v, want cached (resumed)", name, p)
			}
		}
	}
}

// TestStageCacheBench measures the cold-vs-warm speedup on the BigSoC
// case study and emits it as JSON for the benchmark harness. Gated behind
// BENCH_STAGECACHE_OUT (see `make bench-stagecache`) because the cold run
// analyzes the full SoC.
func TestStageCacheBench(t *testing.T) {
	out := os.Getenv("BENCH_STAGECACHE_OUT")
	if out == "" {
		t.Skip("set BENCH_STAGECACHE_OUT=<file> to run the stage-cache benchmark")
	}
	nl := Simplify(BigSoC()).Netlist
	store := NewStageStore(0)
	opt := Options{StageStore: store, SkipModMatch: true}
	opt.Overlap.Sliceable = true

	t0 := time.Now()
	cold := Analyze(nl, opt)
	coldDur := time.Since(t0)
	t1 := time.Now()
	warm := Analyze(nl, opt)
	warmDur := time.Since(t1)

	if cold.Degraded || warm.Degraded {
		t.Fatalf("benchmark runs degraded: cold=%v warm=%v", cold.Degraded, warm.Degraded)
	}
	for name, p := range provenanceByStage(warm) {
		if p != StageCached {
			t.Errorf("warm stage %s provenance = %v, want cached", name, p)
		}
	}
	speedup := float64(coldDur) / float64(warmDur)
	if speedup < 5 {
		t.Errorf("warm run speedup %.1fx, want >= 5x (cold %v, warm %v)", speedup, coldDur, warmDur)
	}

	stats := store.Stats()
	result := map[string]interface{}{
		"design":      nl.Name,
		"stages":      len(cold.Trace),
		"cold_ms":     float64(coldDur.Microseconds()) / 1000,
		"warm_ms":     float64(warmDur.Microseconds()) / 1000,
		"speedup":     fmt.Sprintf("%.1f", speedup),
		"stage_cache": map[string]int64{"hits": stats.Hits, "misses": stats.Misses},
	}
	b, err := json.MarshalIndent(result, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("cold %v, warm %v (%.1fx) -> %s", coldDur, warmDur, speedup, out)
}
