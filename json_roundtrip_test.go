package netlistre

// JSON wire-format pin: the report served by revand and written by
// revan -json is committed under testdata/ for a complete run and a
// degraded (canceled) run, and must decode back through ReadJSONReport
// into the identical byte stream. A field rename, reorder, or omitempty
// change fails here before it breaks downstream consumers.

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// jsonWallClockRE matches the report fields that carry wall-clock time.
var jsonWallClockRE = regexp.MustCompile(`"(runtime_ms|start_ms|duration_ms)": [0-9.eE+-]+`)

func normalizeJSONTimings(b []byte) string {
	return jsonWallClockRE.ReplaceAllString(string(b), `"$1": 0`)
}

func TestJSONReportRoundTrip(t *testing.T) {
	cases := []struct {
		name     string
		degraded bool
	}{
		{"usb", false},
		{"usb_canceled", true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			nl, err := TestArticle("usb")
			if err != nil {
				t.Fatal(err)
			}
			opt := Options{}
			opt.Overlap.Sliceable = true

			ctx := context.Background()
			if tc.degraded {
				var cancel context.CancelFunc
				ctx, cancel = context.WithCancel(ctx)
				cancel() // every stage degrades deterministically
			}
			rep := AnalyzeContext(ctx, nl, opt)
			if rep.Degraded != tc.degraded {
				t.Fatalf("Degraded = %v, want %v", rep.Degraded, tc.degraded)
			}

			var buf bytes.Buffer
			if err := WriteJSONReport(&buf, rep); err != nil {
				t.Fatal(err)
			}

			// Decode-back must reproduce the byte stream exactly: the JSON
			// struct covers every field the encoder writes, map keys are
			// sorted on both passes, and float64 values round-trip.
			decoded, err := ReadJSONReport(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("ReadJSONReport: %v", err)
			}
			var re bytes.Buffer
			enc := json.NewEncoder(&re)
			enc.SetIndent("", "  ")
			if err := enc.Encode(decoded); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), re.Bytes()) {
				t.Errorf("decode/re-encode is not byte-identical:\n--- wrote ---\n%s\n--- re-encoded ---\n%s",
					buf.String(), re.String())
			}

			// Golden pin, with wall-clock fields normalized.
			got := normalizeJSONTimings(buf.Bytes())
			path := filepath.Join("testdata", "json_"+tc.name+".golden")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with `go test -run TestJSONReportRoundTrip -update`): %v", err)
			}
			if got != string(want) {
				t.Errorf("JSON wire format drifted from %s.\nRun `go test -run TestJSONReportRoundTrip -update` if the change is intended.\n--- got ---\n%s\n--- want ---\n%s",
					path, got, want)
			}
		})
	}
}

// TestReadJSONReportRejectsUnknownFields pins the DisallowUnknownFields
// contract ReadJSONReport documents.
func TestReadJSONReportRejectsUnknownFields(t *testing.T) {
	_, err := ReadJSONReport(bytes.NewReader([]byte(`{"design":"x","new_field":1}`)))
	if err == nil {
		t.Fatal("expected an error for an unknown field")
	}
}
