package netlistre

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReadJSONReport throws arbitrary bytes at the report decoder, seeded
// with the checked-in golden reports. ReadJSONReport must never panic,
// and anything it accepts must survive a re-encode/re-decode cycle.
func FuzzReadJSONReport(f *testing.F) {
	for _, name := range []string{"json_usb.golden", "json_usb_canceled.golden"} {
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"design":"x","modules":[{"type":"adder","width":4}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := ReadJSONReport(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			t.Fatalf("re-encode of accepted report failed: %v", err)
		}
		if _, err := ReadJSONReport(&buf); err != nil {
			t.Fatalf("re-decode of re-encoded report failed: %v", err)
		}
	})
}
